#include "starlay/core/star_shard.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "starlay/core/star_layout.hpp"
#include "starlay/layout/channel.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/stream_records.hpp"
#include "starlay/layout/wire_rules.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/mapped_file.hpp"
#include "starlay/support/math.hpp"
#include "starlay/support/process_pool.hpp"
#include "starlay/support/runtime_config.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::core {

namespace lay = starlay::layout;
namespace sup = starlay::support;
namespace topo = starlay::topology;
namespace tel = starlay::support::telemetry;

using std::int16_t;
using std::int32_t;
using std::int64_t;
using std::uint32_t;
using std::uint64_t;
using std::uint8_t;

// ---------------------------------------------------------------------------
// StarSlotGrid
// ---------------------------------------------------------------------------

StarSlotGrid StarSlotGrid::make(int n, int base_size) {
  StarSlotGrid g;
  g.n = n;
  g.base_size = base_size;
  g.shapes = star_level_shapes(n, base_size);  // REQUIREs the domain
  g.levels = static_cast<int>(g.shapes.size());
  g.digit_count.resize(static_cast<std::size_t>(g.levels));
  for (int j = 0; j + 1 < g.levels; ++j)
    g.digit_count[static_cast<std::size_t>(j)] = n - j;
  g.digit_count[static_cast<std::size_t>(g.levels - 1)] =
      static_cast<int32_t>(starlay::factorial(base_size));
  g.rstride.assign(static_cast<std::size_t>(g.levels), 1);
  g.cstride.assign(static_cast<std::size_t>(g.levels), 1);
  for (int j = g.levels - 2; j >= 0; --j) {
    g.rstride[static_cast<std::size_t>(j)] =
        g.rstride[static_cast<std::size_t>(j + 1)] * g.shapes[static_cast<std::size_t>(j + 1)].rows;
    g.cstride[static_cast<std::size_t>(j)] =
        g.cstride[static_cast<std::size_t>(j + 1)] * g.shapes[static_cast<std::size_t>(j + 1)].cols;
  }
  const int64_t rows = g.rstride[0] * g.shapes[0].rows;
  const int64_t cols = g.cstride[0] * g.shapes[0].cols;
  STARLAY_REQUIRE(rows * cols <= std::numeric_limits<int32_t>::max(),
                  "star slot grid: slot ids exceed 32-bit range");
  g.rows = static_cast<int32_t>(rows);
  g.cols = static_cast<int32_t>(cols);
  return g;
}

int32_t StarSlotGrid::row_of_digits(const int32_t* d) const {
  int64_t r = 0;
  for (int j = 0; j < levels; ++j)
    r += (d[j] / shapes[static_cast<std::size_t>(j)].cols) *
         rstride[static_cast<std::size_t>(j)];
  return static_cast<int32_t>(r);
}

int32_t StarSlotGrid::col_of_digits(const int32_t* d) const {
  int64_t c = 0;
  for (int j = 0; j < levels; ++j)
    c += (d[j] % shapes[static_cast<std::size_t>(j)].cols) *
         cstride[static_cast<std::size_t>(j)];
  return static_cast<int32_t>(c);
}

namespace {

/// Decomposes a slot into its per-level digits; returns false when some
/// level's digit is out of range (the slot is an over-provisioned hole).
bool decode_slot_digits(const StarSlotGrid& g, int64_t slot, int32_t* out) {
  int64_t r = slot / g.cols;
  int64_t c = slot % g.cols;
  for (int j = 0; j < g.levels; ++j) {
    const lay::LevelShape sh = g.shapes[static_cast<std::size_t>(j)];
    const int64_t dr = r / g.rstride[static_cast<std::size_t>(j)];
    const int64_t dc = c / g.cstride[static_cast<std::size_t>(j)];
    r %= g.rstride[static_cast<std::size_t>(j)];
    c %= g.cstride[static_cast<std::size_t>(j)];
    const int64_t digit = dr * sh.cols + dc;
    if (digit >= g.digit_count[static_cast<std::size_t>(j)]) return false;
    out[j] = static_cast<int32_t>(digit);
  }
  return true;
}

}  // namespace

bool StarSlotGrid::occupied(int64_t slot) const {
  std::array<int32_t, 16> d{};
  return decode_slot_digits(*this, slot, d.data());
}

int64_t StarSlotGrid::rank_of_slot(int64_t slot) const {
  std::array<int32_t, 16> d{};
  STARLAY_REQUIRE(decode_slot_digits(*this, slot, d.data()),
                  "star slot grid: rank_of_slot on an empty slot");
  // Rebuild the permutation: positions n-1 down to base_size pick the
  // (digit+1)-th smallest remaining symbol; the base prefix unranks the
  // base-block rank factoradically over what is left.
  std::vector<uint8_t> avail;
  avail.reserve(static_cast<std::size_t>(n));
  for (int s = 1; s <= n; ++s) avail.push_back(static_cast<uint8_t>(s));
  topo::Perm p(static_cast<std::size_t>(n));
  for (int j = 0; j + 1 < levels; ++j) {
    const int pos = n - 1 - j;
    const int32_t digit = d[static_cast<std::size_t>(j)];
    p[static_cast<std::size_t>(pos)] = avail[static_cast<std::size_t>(digit)];
    avail.erase(avail.begin() + digit);
  }
  int64_t fact = 1;
  for (int k = 2; k < base_size; ++k) fact *= k;  // (base_size-1)!
  int64_t br = d[static_cast<std::size_t>(levels - 1)];
  for (int k = 0; k < base_size; ++k) {
    const int64_t idx = fact > 0 ? br / fact : 0;
    br = fact > 0 ? br % fact : 0;
    p[static_cast<std::size_t>(k)] = avail[static_cast<std::size_t>(idx)];
    avail.erase(avail.begin() + idx);
    if (base_size - 1 - k > 0) fact /= (base_size - 1 - k);
  }
  return topo::perm_rank(p);
}

// ---------------------------------------------------------------------------
// Spill record types + helpers
// ---------------------------------------------------------------------------

namespace {

enum : uint8_t { kRowWire = 0, kColWire = 1, kLWire = 2 };

/// Per-edge routing plan, accreted across the phases (offsets in phase 2,
/// the horizontal track in phase 4, the vertical track in phase 6).
struct PrePlanRec {
  int32_t src_slot = 0, dst_slot = 0;
  int32_t h_track = -1, v_track = -1;
  uint8_t src_off = 0, dst_off = 0;
  uint8_t cls = 0;
  uint8_t pad = 0;
};
static_assert(sizeof(PrePlanRec) == 20, "PrePlanRec layout drifted");

/// One endpoint's stub-ordering key.  (shard, local) because global edge
/// ids are only known after the per-shard plan counts are concatenated.
struct StubRec {
  int32_t slot = 0;
  int32_t primary = 0, secondary = 0;
  uint32_t local = 0;
  std::uint16_t shard = 0;
  uint8_t side = 0;  ///< router Side: 0 = top, 2 = right
  uint8_t is_src = 0;
};
static_assert(sizeof(StubRec) == 20, "StubRec layout drifted");

struct OffRec {
  uint32_t eid = 0;
  uint8_t off = 0, is_src = 0;
  std::uint16_t pad = 0;
};
static_assert(sizeof(OffRec) == 8, "OffRec layout drifted");

struct HIntRec {
  int32_t lo = 0, hi = 0;
  uint32_t eid = 0;
  int32_t chan = 0;
};
static_assert(sizeof(HIntRec) == 16, "HIntRec layout drifted");

struct VIntRec {
  int64_t lo = 0, hi = 0;
  uint32_t eid = 0;
  int32_t chan = 0;
};
static_assert(sizeof(VIntRec) == 24, "VIntRec layout drifted");

struct TrkRec {
  uint32_t eid = 0;
  int32_t track = 0;
};
static_assert(sizeof(TrkRec) == 8, "TrkRec layout drifted");

/// Header of one scan task's result file: task-aggregated wire stats, the
/// per-chunk fingerprint digests, the per-band record counts and the first
/// max_errors error messages (chunk order), serialized behind it.
struct ScanHeader {
  int64_t nchunks = 0;
  int64_t len = 0, len_max = 0, nsegs = 0;
  int64_t err_total = 0, nmsgs = 0;
  int32_t max_layer = 0, pad = 0;
  int64_t bx0 = 0, by0 = 0, bx1 = -1, by1 = -1;
};

struct CertHeader {
  int64_t total = 0;   ///< conflicts found by the batch (pre-truncation)
  int64_t nmsgs = 0;   ///< serialized messages (first max_errors)
};

template <typename T>
std::vector<T> load_records(const std::string& path) {
  std::vector<T> v;
  if (!sup::path_exists(path) || sup::file_size(path) == 0) return v;
  sup::MappedFile m = sup::MappedFile::open(path, false);
  STARLAY_REQUIRE(m.size() % static_cast<int64_t>(sizeof(T)) == 0,
                  "sharded: spill record size mismatch");
  v.resize(static_cast<std::size_t>(m.size() / static_cast<int64_t>(sizeof(T))));
  if (m.size() > 0) std::memcpy(v.data(), m.data(), static_cast<std::size_t>(m.size()));
  m.close();
  return v;
}

/// Lazily-created per-bucket append writers (a bucket with no records
/// never creates a file; load_records treats that as zero records).
class BucketWriters {
 public:
  BucketWriters(int64_t nbuckets, std::function<std::string(int64_t)> path,
                std::size_t buf_bytes = 1u << 20)
      : path_(std::move(path)), buf_bytes_(buf_bytes) {
    writers_.resize(static_cast<std::size_t>(nbuckets));
  }

  sup::AppendWriter& at(int64_t b) {
    auto& w = writers_[static_cast<std::size_t>(b)];
    if (!w) w = std::make_unique<sup::AppendWriter>(path_(b), buf_bytes_);
    return *w;
  }

  void close_all() {
    for (auto& w : writers_)
      if (w) w->close();
  }

 private:
  std::function<std::string(int64_t)> path_;
  std::size_t buf_bytes_;
  std::vector<std::unique_ptr<sup::AppendWriter>> writers_;
};

void append_msgs(sup::AppendWriter& w, const std::vector<std::string>& msgs) {
  for (const std::string& m : msgs) {
    const auto len = static_cast<uint32_t>(m.size());
    w.append_record(len);
    w.append(m.data(), m.size());
  }
}

struct Cursor {
  const unsigned char* p = nullptr;
  int64_t left = 0;

  void read(void* dst, int64_t n) {
    STARLAY_REQUIRE(left >= n, "sharded: truncated spill file");
    std::memcpy(dst, p, static_cast<std::size_t>(n));
    p += n;
    left -= n;
  }
  template <typename T>
  T get() {
    T t;
    read(&t, static_cast<int64_t>(sizeof(T)));
    return t;
  }
  std::string get_str() {
    const auto len = get<uint32_t>();
    std::string s(len, '\0');
    if (len > 0) read(s.data(), len);
    return s;
  }
};

/// Mirrors layout::parity_source_is_first (paper rule: walk from the
/// first row toward the second in |delta|-sized hops; even hop count from
/// row 0 makes the first endpoint the source).
bool parity_source_is_first(int32_t a, int32_t b) {
  STARLAY_REQUIRE(a != b, "parity_source_is_first: rows must differ");
  const int32_t k = std::abs(a - b);
  return (a / k) % 2 == 0;
}

/// Restores the caller's thread-pool width after the forked phases.
class PoolShrinkGuard {
 public:
  explicit PoolShrinkGuard(bool active) {
    if (active) {
      saved_ = sup::ThreadPool::instance().num_threads();
      sup::ThreadPool::instance().set_num_threads(1);
    }
  }
  ~PoolShrinkGuard() {
    if (saved_ > 0) sup::ThreadPool::instance().set_num_threads(saved_);
  }
  PoolShrinkGuard(const PoolShrinkGuard&) = delete;
  PoolShrinkGuard& operator=(const PoolShrinkGuard&) = delete;

 private:
  int saved_ = 0;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

class ShardEngine {
 public:
  ShardEngine(int n, const ShardOptions& opt) : n_(n), opt_(opt) {}

  ShardReport run();

 private:
  // --- setup -------------------------------------------------------------
  void setup();
  void run_tasks(const char* phase, int64_t ntasks,
                 const std::function<void(int64_t, int)>& fn);
  std::string tfile(const char* kind, int64_t t) const {
    return dir_ + "/" + kind + "_t" + std::to_string(t) + ".bin";
  }
  std::string bfile(const char* kind, int64_t t, int64_t b) const {
    return dir_ + "/" + kind + "_t" + std::to_string(t) + "_b" + std::to_string(b) + ".bin";
  }
  void rm(const std::string& path) const {
    if (!opt_.keep_spill && sup::path_exists(path)) sup::remove_file(path);
  }
  void account(const std::string& path) {
    if (sup::path_exists(path)) spill_bytes_ += sup::file_size(path);
  }

  // --- phases ------------------------------------------------------------
  void phase1_plan();
  void phase1b_concat();
  void phase2_stubs();
  void phase3_hintervals();
  void phase4_hpack();
  void phase5_vintervals();
  void phase6_vpack();
  void geometry();
  void phase7_scan();
  void merge_scans();
  void phase8_records();
  void phase9_batches();
  void finalize(ShardReport& out);

  // --- analytic router geometry ------------------------------------------
  int64_t xkey_cell(int32_t col, int32_t off) const {
    return static_cast<int64_t>(col) * (w_ + 1) + 1 + off;
  }
  int64_t xkey_chan(int32_t chan) const { return static_cast<int64_t>(chan) * (w_ + 1); }
  int64_t ykey_cell(int32_t row, int32_t off) const {
    return static_cast<int64_t>(row) * yw_ + max_h_tracks_ + off;
  }
  int64_t ykey_track(int32_t chan, int32_t track) const {
    return static_cast<int64_t>(chan) * yw_ + track;
  }

  lay::Wire make_wire(int64_t e, const PrePlanRec& r) const;

  /// Analytic rect index: node bands are disjoint in both axes, so a query
  /// segment meets a contiguous run of row and column bands.  Emission
  /// order matches RectIndex::for_touching: row bands ascending, columns
  /// ascending within each band, occupied slots only.
  struct IndexView {
    const ShardEngine* eng;
    template <typename F>
    void for_touching(bool horizontal, lay::Coord line, lay::Coord lo, lay::Coord hi,
                      F&& f) const {
      const lay::Coord ylo = horizontal ? line : lo;
      const lay::Coord yhi = horizontal ? line : hi;
      const lay::Coord xlo = horizontal ? lo : line;
      const lay::Coord xhi = horizontal ? hi : line;
      const auto& rows = eng->row_y0_;
      const auto& cols = eng->col_x0_;
      const lay::Coord w = eng->w_;
      auto rit = std::lower_bound(rows.begin(), rows.end(), ylo - (w - 1));
      for (; rit != rows.end() && *rit <= yhi; ++rit) {
        const auto row = static_cast<int64_t>(rit - rows.begin());
        auto cit = std::lower_bound(cols.begin(), cols.end(), xlo - (w - 1));
        for (; cit != cols.end() && *cit <= xhi; ++cit) {
          const auto col = static_cast<int64_t>(cit - cols.begin());
          const int64_t slot = row * eng->C_ + col;
          if (eng->grid_.occupied(slot)) f(static_cast<int32_t>(slot));
        }
      }
    }
  };

  lay::Rect slot_rect(int64_t slot) const {
    const auto row = static_cast<int32_t>(slot / C_);
    const auto col = static_cast<int32_t>(slot % C_);
    return {col_x0_[static_cast<std::size_t>(col)], row_y0_[static_cast<std::size_t>(row)],
            col_x0_[static_cast<std::size_t>(col)] + w_ - 1,
            row_y0_[static_cast<std::size_t>(row)] + w_ - 1};
  }

  int64_t yband(lay::Coord y) const { return y >> shift_; }
  int64_t xband(lay::Coord x) const { return x >> shift_; }

  // --- members ------------------------------------------------------------
  int n_ = 0;
  ShardOptions opt_;
  int base_ = 0;
  StarSlotGrid grid_;
  std::array<int64_t, 16> fact_{};
  int64_t N_ = 0, E_ = 0;
  int workers_ = 1;
  int64_t num_shards_ = 1;
  std::vector<int64_t> shard_lo_;  ///< num_shards_+1 rank boundaries
  std::string dir_;
  int32_t R_ = 0, C_ = 0, HC_ = 0, VC_ = 0;
  lay::Coord w_ = 1;

  int64_t nstub_bands_ = 1, band_slots_ = 1;
  int64_t nedge_bands_ = 1, band_edges_ = 1;
  int64_t nh_bands_ = 1, hband_ = 1;
  int64_t nv_bands_ = 1, vband_ = 1;

  std::vector<int64_t> edge_start_;  ///< per shard, global eid of its first edge

  std::vector<int32_t> h_tracks_, v_tracks_;  ///< per channel track counts
  int64_t max_h_tracks_ = 0;
  int64_t yw_ = 0;  ///< vertical ordinal-key row width (w_ + max_h_tracks_)

  std::vector<lay::Coord> chan_x0_, col_x0_, chan_y0_, row_y0_;
  int64_t max_row_ = 0, max_col_ = 0;
  lay::Rect bb_;
  int64_t ybands_ = 0, xbands_ = 0;
  int shift_ = 12;

  std::vector<int64_t> hseg_c_, hprobe_c_, vseg_c_, vprobe_c_, via_c_;

  struct BatchTask {
    int space = 0;  ///< 0 = horizontal segs, 1 = vertical segs, 2 = vias
    lay::BandBatch bt;
  };
  std::vector<BatchTask> batch_tasks_;
  std::vector<int64_t> ybatch_of_, xbatch_of_, viabatch_of_;  ///< band -> task, -1 = none

  lay::StreamReport rep_;
  uint64_t fingerprint_ = 0;
  std::vector<uint64_t> chunk_digests_;  ///< global chunk order

  int64_t spill_bytes_ = 0;
  int64_t worker_rss_ = 0;
};

void ShardEngine::setup() {
  base_ = std::min(opt_.base_size, n_);
  grid_ = StarSlotGrid::make(n_, base_);
  fact_[0] = 1;
  for (int k = 1; k < 16; ++k)
    fact_[static_cast<std::size_t>(k)] =
        fact_[static_cast<std::size_t>(k - 1)] * (k <= n_ ? k : 1);
  N_ = starlay::factorial(n_);
  E_ = N_ * (n_ - 1) / 2;
  STARLAY_REQUIRE(E_ <= std::numeric_limits<uint32_t>::max(),
                  "sharded: edge count exceeds 32-bit record ids");
  R_ = grid_.rows;
  C_ = grid_.cols;
  HC_ = R_ + 1;
  VC_ = C_ + 1;
  w_ = std::max<lay::Coord>(1, n_ - 1);
  shift_ = opt_.band_shift;

  workers_ = std::max(1, opt_.workers);
  num_shards_ = opt_.num_shards > 0 ? opt_.num_shards
                                    : static_cast<int64_t>(workers_) * 4;
  num_shards_ = std::clamp<int64_t>(num_shards_, 1, std::min<int64_t>(N_, 60000));
  shard_lo_.resize(static_cast<std::size_t>(num_shards_) + 1);
  for (int64_t s = 0; s <= num_shards_; ++s)
    shard_lo_[static_cast<std::size_t>(s)] = N_ * s / num_shards_;

  const std::string& cfg_spill = sup::RuntimeConfig::process().spill_dir;
  const std::string root = !opt_.spill_dir.empty() ? opt_.spill_dir
                           : !cfg_spill.empty()    ? cfg_spill
                                                   : "starlay_spill";
  dir_ = root + "/star_n" + std::to_string(n_);
  sup::remove_tree(dir_);  // engine-owned subdir: stale runs only
  sup::make_dirs(dir_);

  const int64_t num_slots = static_cast<int64_t>(R_) * C_;
  nstub_bands_ = std::clamp<int64_t>(num_slots >> 21, 1, 48);
  band_slots_ = starlay::ceil_div(num_slots, nstub_bands_);
  nstub_bands_ = starlay::ceil_div(num_slots, band_slots_);

  // Edge bands are multiples of the fingerprint grain so every task's
  // chunk boundaries coincide with the canonical global chunk grid.
  int64_t tgt = std::clamp<int64_t>(E_ >> 22, 1, 48);
  band_edges_ = starlay::ceil_div(starlay::ceil_div(E_, tgt), lay::kFingerprintGrain) *
                lay::kFingerprintGrain;
  nedge_bands_ = starlay::ceil_div(E_, band_edges_);

  int64_t nh = std::min<int64_t>(HC_, 48);
  hband_ = starlay::ceil_div(HC_, nh);
  nh_bands_ = starlay::ceil_div(HC_, hband_);
  int64_t nv = std::min<int64_t>(VC_, 48);
  vband_ = starlay::ceil_div(VC_, nv);
  nv_bands_ = starlay::ceil_div(VC_, vband_);
}

void ShardEngine::run_tasks(const char* phase, int64_t ntasks,
                            const std::function<void(int64_t, int)>& fn) {
  tel::ScopedPhase p(phase);
  const sup::ProcessPoolResult res = sup::run_process_tasks(workers_, ntasks, dir_, fn);
  worker_rss_ = std::max(worker_rss_, res.max_peak_rss_bytes());
}

// --- phase 1: enumerate + classify + orient --------------------------------

void ShardEngine::phase1_plan() {
  const int n = n_;
  const int base = base_;
  const int L = grid_.levels;
  const StarSlotGrid grid = grid_;
  const std::array<int64_t, 16> fact = fact_;
  const int64_t band_slots = band_slots_;
  const int64_t nstub_bands = nstub_bands_;
  const auto shard_lo = shard_lo_;

  run_tasks("shard_plan", num_shards_, [&, this](int64_t s, int) {
    const int64_t lo = shard_lo[static_cast<std::size_t>(s)];
    const int64_t hi = shard_lo[static_cast<std::size_t>(s) + 1];
    sup::AppendWriter plan(tfile("plan", s));
    BucketWriters stubs(nstub_bands, [&](int64_t b) { return bfile("stub", s, b); });

    topo::StarPathEnumerator en(lo, n, base);
    std::array<int32_t, 16> udig{}, vdig{};
    std::array<int32_t, 16> cnt{};  ///< cnt[m] = |{1<=k<=m : p[k] < p[0]}|
    uint32_t local = 0;

    for (int64_t r = lo; r < hi; ++r) {
      const topo::Perm& p = en.perm();
      for (int d = 0; d + 1 < L; ++d) udig[static_cast<std::size_t>(d)] = en.digit(d);
      udig[static_cast<std::size_t>(L - 1)] = en.base_rank();
      const int32_t ur = grid.row_of_digits(udig.data());
      const int32_t uc = grid.col_of_digits(udig.data());
      const int x = p[0];
      cnt[0] = 0;
      for (int m = 1; m < n; ++m)
        cnt[static_cast<std::size_t>(m)] =
            cnt[static_cast<std::size_t>(m - 1)] + (p[static_cast<std::size_t>(m)] < x ? 1 : 0);

      for (int i = 2; i <= n; ++i) {
        const int jswap = i - 1;
        const int64_t q = topo::rank_after_swap(p.data(), n, r, 0, jswap, fact.data());
        if (r >= q) continue;  // builder keeps each edge from its lower rank
        const int y = p[static_cast<std::size_t>(jswap)];

        // v = u with positions 0 and jswap swapped: only digits at
        // positions in [base, jswap] and the base rank can change.
        vdig = udig;
        if (jswap >= base) {
          vdig[static_cast<std::size_t>(n - i)] =
              (y < x ? 1 : 0) + cnt[static_cast<std::size_t>(jswap - 1)];
          for (int j = base; j < jswap; ++j) {
            const int pj = p[static_cast<std::size_t>(j)];
            vdig[static_cast<std::size_t>(n - 1 - j)] +=
                (y < pj ? 1 : 0) - (x < pj ? 1 : 0);
          }
        }
        std::array<int, 12> vp{};
        vp[0] = y;  // position 0 always receives p[jswap]
        for (int k = 1; k < base; ++k) vp[static_cast<std::size_t>(k)] = p[static_cast<std::size_t>(k)];
        if (jswap < base) vp[static_cast<std::size_t>(jswap)] = x;
        int64_t br = 0;
        for (int k = 0; k < base; ++k) {
          int c = 0;
          for (int m = k + 1; m < base; ++m)
            if (vp[static_cast<std::size_t>(m)] < vp[static_cast<std::size_t>(k)]) ++c;
          br += c * fact[static_cast<std::size_t>(base - 1 - k)];
        }
        vdig[static_cast<std::size_t>(L - 1)] = static_cast<int32_t>(br);
        const int32_t vr = grid.row_of_digits(vdig.data());
        const int32_t vc = grid.col_of_digits(vdig.data());

        // Classification + orientation, mirroring route_grid / star_route_spec.
        uint8_t cls;
        bool u_src;
        if (ur == vr) {
          cls = kRowWire;
          u_src = uc <= vc;
        } else if (uc == vc) {
          cls = kColWire;
          u_src = ur <= vr;
        } else {
          cls = kLWire;
          if (i > base) {
            const int depth = n - i;
            const int32_t du = udig[static_cast<std::size_t>(depth)];
            const int32_t dv = vdig[static_cast<std::size_t>(depth)];
            const int32_t cols = grid.shapes[static_cast<std::size_t>(depth)].cols;
            const int32_t bru = du / cols, brv = dv / cols;
            if (bru != brv) {
              u_src = parity_source_is_first(bru, brv);
            } else {
              const int32_t bcu = du % cols, bcv = dv % cols;
              STARLAY_REQUIRE(bcu != bcv, "star_route_spec: identical block digits");
              u_src = parity_source_is_first(bcu, bcv);
            }
          } else {
            u_src = parity_source_is_first(ur, vr);
          }
        }

        const int32_t sr = u_src ? ur : vr, sc = u_src ? uc : vc;
        const int32_t dr = u_src ? vr : ur, dc = u_src ? vc : uc;
        PrePlanRec rec;
        rec.src_slot = sr * C_ + sc;
        rec.dst_slot = dr * C_ + dc;
        rec.cls = cls;
        plan.append_record(rec);

        // Stub records: row wires attach both ends on top, column wires on
        // the right, L wires source-top / dest-right (two-sided routing).
        StubRec ss, ds;
        ss.local = ds.local = local;
        ss.shard = ds.shard = static_cast<std::uint16_t>(s);
        ss.is_src = 1;
        ds.is_src = 0;
        ss.slot = rec.src_slot;
        ds.slot = rec.dst_slot;
        if (cls == kColWire) {
          ss.side = ds.side = 2;  // right: primary = far row, secondary = far col
          ss.primary = dr;
          ss.secondary = dc;
          ds.primary = sr;
          ds.secondary = sc;
        } else {
          ss.side = 0;  // top: primary = far col, secondary = far row
          ss.primary = dc;
          ss.secondary = dr;
          if (cls == kRowWire) {
            ds.side = 0;
            ds.primary = sc;
            ds.secondary = sr;
          } else {
            ds.side = 2;
            ds.primary = sr;
            ds.secondary = sc;
          }
        }
        stubs.at(ss.slot / band_slots).append_record(ss);
        stubs.at(ds.slot / band_slots).append_record(ds);
        ++local;
      }
      if (r + 1 < hi) en.advance();
    }
    plan.close();
    stubs.close_all();
  });
}

// --- phase 1b: concatenate per-shard plans into one eid-ordered file -------

void ShardEngine::phase1b_concat() {
  tel::ScopedPhase phase("shard_concat");
  edge_start_.assign(static_cast<std::size_t>(num_shards_) + 1, 0);
  for (int64_t s = 0; s < num_shards_; ++s) {
    const int64_t bytes = sup::file_size(tfile("plan", s));
    STARLAY_REQUIRE(bytes % static_cast<int64_t>(sizeof(PrePlanRec)) == 0,
                    "sharded: plan file size mismatch");
    edge_start_[static_cast<std::size_t>(s) + 1] =
        edge_start_[static_cast<std::size_t>(s)] +
        bytes / static_cast<int64_t>(sizeof(PrePlanRec));
  }
  STARLAY_REQUIRE(edge_start_[static_cast<std::size_t>(num_shards_)] == E_,
                  "sharded: planned edge count != n! * (n-1) / 2");
  for (int64_t s = 0; s < num_shards_; ++s) account(tfile("plan", s));
  for (int64_t s = 0; s < num_shards_; ++s)
    for (int64_t b = 0; b < nstub_bands_; ++b) account(bfile("stub", s, b));

  sup::AppendWriter out(dir_ + "/preplan.bin", 8u << 20);
  constexpr int64_t kCopyChunk = 8 << 20;
  for (int64_t s = 0; s < num_shards_; ++s) {
    const std::string path = tfile("plan", s);
    if (sup::file_size(path) > 0) {
      sup::MappedFile m = sup::MappedFile::open(path, false);
      for (int64_t off = 0; off < m.size(); off += kCopyChunk) {
        const int64_t len = std::min<int64_t>(kCopyChunk, m.size() - off);
        out.append(static_cast<const unsigned char*>(m.data()) + off,
                   static_cast<std::size_t>(len));
        m.drop_resident(off, len);
      }
      m.close();
    }
    rm(path);
  }
  out.close();
  spill_bytes_ += E_ * static_cast<int64_t>(sizeof(PrePlanRec));
}

// --- phase 2: per-slot-band stub sort -> per-side offsets ------------------

void ShardEngine::phase2_stubs() {
  const auto edge_start = edge_start_;
  run_tasks("shard_stubs", nstub_bands_, [&, this](int64_t b, int) {
    std::vector<StubRec> all;
    for (int64_t s = 0; s < num_shards_; ++s) {
      std::vector<StubRec> part = load_records<StubRec>(bfile("stub", s, b));
      all.insert(all.end(), part.begin(), part.end());
    }
    std::sort(all.begin(), all.end(), [](const StubRec& a, const StubRec& c) {
      if (a.slot != c.slot) return a.slot < c.slot;
      if (a.side != c.side) return a.side < c.side;
      if (a.primary != c.primary) return a.primary < c.primary;
      return a.secondary < c.secondary;
    });
    BucketWriters off(nedge_bands_, [&](int64_t eb) { return bfile("off", b, eb); });
    int32_t demand = 0;
    for (std::size_t i = 0; i < all.size();) {
      std::size_t j = i;
      while (j < all.size() && all[j].slot == all[i].slot && all[j].side == all[i].side)
        ++j;
      demand = std::max(demand, static_cast<int32_t>(j - i));
      for (std::size_t k = i; k < j; ++k) {
        const int64_t eid =
            edge_start[all[k].shard] + static_cast<int64_t>(all[k].local);
        OffRec o;
        o.eid = static_cast<uint32_t>(eid);
        o.off = static_cast<uint8_t>(k - i);
        o.is_src = all[k].is_src;
        off.at(eid / band_edges_).append_record(o);
      }
      i = j;
    }
    off.close_all();
    sup::AppendWriter dw(tfile("demand", b));
    dw.append_record(demand);
    dw.close();
    for (int64_t s = 0; s < num_shards_; ++s) rm(bfile("stub", s, b));
  });

  int32_t w_needed = 1;
  for (int64_t b = 0; b < nstub_bands_; ++b) {
    for (int64_t eb = 0; eb < nedge_bands_; ++eb) account(bfile("off", b, eb));
    account(tfile("demand", b));
    const std::vector<int32_t> d = load_records<int32_t>(tfile("demand", b));
    for (const int32_t v : d) w_needed = std::max(w_needed, v);
    rm(tfile("demand", b));
  }
  STARLAY_REQUIRE(w_ >= w_needed, "sharded: stub demand exceeds the Thompson node size");
}

// --- phase 3: horizontal interval keys -------------------------------------

void ShardEngine::phase3_hintervals() {
  run_tasks("shard_hint", nedge_bands_, [&, this](int64_t eb, int) {
    const int64_t elo = eb * band_edges_;
    const int64_t ehi = std::min(E_, elo + band_edges_);
    sup::MappedFile pre = sup::MappedFile::open(dir_ + "/preplan.bin", true);
    auto* recs = pre.as<PrePlanRec>() + elo;
    int64_t applied = 0;
    for (int64_t sb = 0; sb < nstub_bands_; ++sb) {
      const std::vector<OffRec> offs = load_records<OffRec>(bfile("off", sb, eb));
      for (const OffRec& o : offs) {
        const int64_t eid = o.eid;
        STARLAY_REQUIRE(eid >= elo && eid < ehi, "sharded: stub offset out of band");
        PrePlanRec& r = recs[eid - elo];
        if (o.is_src)
          r.src_off = o.off;
        else
          r.dst_off = o.off;
      }
      applied += static_cast<int64_t>(offs.size());
    }
    STARLAY_REQUIRE(applied == 2 * (ehi - elo), "sharded: stub offset application incomplete");

    BucketWriters hint(nh_bands_, [&](int64_t cb) { return bfile("hint", eb, cb); });
    for (int64_t e = elo; e < ehi; ++e) {
      const PrePlanRec& r = recs[e - elo];
      if (r.cls == kColWire) continue;
      const int32_t srow = r.src_slot / C_, scol = r.src_slot % C_;
      const int32_t dcol = r.dst_slot % C_;
      const int32_t chan = srow + 1;
      int64_t lo = xkey_cell(scol, r.src_off);
      int64_t hi = r.cls == kRowWire ? xkey_cell(dcol, r.dst_off) : xkey_chan(dcol + 1);
      if (lo > hi) std::swap(lo, hi);
      HIntRec h;
      h.lo = static_cast<int32_t>(lo);
      h.hi = static_cast<int32_t>(hi);
      h.eid = static_cast<uint32_t>(e);
      h.chan = chan;
      hint.at(chan / hband_).append_record(h);
    }
    hint.close_all();
    pre.drop_resident(elo * static_cast<int64_t>(sizeof(PrePlanRec)),
                      (ehi - elo) * static_cast<int64_t>(sizeof(PrePlanRec)));
    pre.close();
    for (int64_t sb = 0; sb < nstub_bands_; ++sb) rm(bfile("off", sb, eb));
  });
  for (int64_t eb = 0; eb < nedge_bands_; ++eb)
    for (int64_t cb = 0; cb < nh_bands_; ++cb) account(bfile("hint", eb, cb));
}

// --- phases 4 + 6: left-edge channel packing -------------------------------

namespace {

/// Packs one channel band's intervals: sorted by (chan, lo, hi), each
/// channel run fed to the router's pure left-edge packer.  Emits per-edge
/// track records into edge-band buckets and returns per-channel counts.
template <typename IntRec>
std::vector<int32_t> pack_channel_band(std::vector<IntRec>& ints, int64_t chan_lo,
                                       int64_t chan_hi, BucketWriters& trk,
                                       int64_t band_edges) {
  std::sort(ints.begin(), ints.end(), [](const IntRec& a, const IntRec& b) {
    if (a.chan != b.chan) return a.chan < b.chan;
    if (a.lo != b.lo) return a.lo < b.lo;
    return a.hi < b.hi;
  });
  std::vector<int32_t> counts(static_cast<std::size_t>(chan_hi - chan_lo), 0);
  std::vector<lay::PackRequest> reqs;
  for (std::size_t i = 0; i < ints.size();) {
    std::size_t j = i;
    while (j < ints.size() && ints[j].chan == ints[i].chan) ++j;
    reqs.clear();
    reqs.reserve(j - i);
    for (std::size_t k = i; k < j; ++k)
      reqs.push_back({static_cast<int64_t>(ints[k].lo), static_cast<int64_t>(ints[k].hi)});
    const lay::PackResult pr = lay::pack_intervals_left_edge(reqs);
    for (std::size_t k = i; k < j; ++k) {
      TrkRec t;
      t.eid = ints[k].eid;
      t.track = pr.track[k - i];
      trk.at(static_cast<int64_t>(t.eid) / band_edges).append_record(t);
    }
    counts[static_cast<std::size_t>(ints[i].chan - chan_lo)] = pr.num_tracks;
    i = j;
  }
  return counts;
}

}  // namespace

void ShardEngine::phase4_hpack() {
  run_tasks("shard_hpack", nh_bands_, [&, this](int64_t cb, int) {
    std::vector<HIntRec> ints;
    for (int64_t eb = 0; eb < nedge_bands_; ++eb) {
      std::vector<HIntRec> part = load_records<HIntRec>(bfile("hint", eb, cb));
      ints.insert(ints.end(), part.begin(), part.end());
    }
    const int64_t chan_lo = cb * hband_;
    const int64_t chan_hi = std::min<int64_t>(HC_, chan_lo + hband_);
    BucketWriters trk(nedge_bands_, [&](int64_t eb) { return bfile("htrk", cb, eb); });
    const std::vector<int32_t> counts =
        pack_channel_band(ints, chan_lo, chan_hi, trk, band_edges_);
    trk.close_all();
    sup::AppendWriter cw(tfile("hcnt", cb));
    cw.append(counts.data(), counts.size() * sizeof(int32_t));
    cw.close();
    for (int64_t eb = 0; eb < nedge_bands_; ++eb) rm(bfile("hint", eb, cb));
  });

  h_tracks_.assign(static_cast<std::size_t>(HC_), 0);
  for (int64_t cb = 0; cb < nh_bands_; ++cb) {
    for (int64_t eb = 0; eb < nedge_bands_; ++eb) account(bfile("htrk", cb, eb));
    account(tfile("hcnt", cb));
    const std::vector<int32_t> counts = load_records<int32_t>(tfile("hcnt", cb));
    const int64_t chan_lo = cb * hband_;
    for (std::size_t k = 0; k < counts.size(); ++k)
      h_tracks_[static_cast<std::size_t>(chan_lo) + k] = counts[k];
    rm(tfile("hcnt", cb));
  }
  max_h_tracks_ = 0;
  for (const int32_t t : h_tracks_) max_h_tracks_ = std::max<int64_t>(max_h_tracks_, t);
  yw_ = w_ + max_h_tracks_;
}

// --- phase 5: vertical interval keys ---------------------------------------

void ShardEngine::phase5_vintervals() {
  run_tasks("shard_vint", nedge_bands_, [&, this](int64_t eb, int) {
    const int64_t elo = eb * band_edges_;
    const int64_t ehi = std::min(E_, elo + band_edges_);
    sup::MappedFile pre = sup::MappedFile::open(dir_ + "/preplan.bin", true);
    auto* recs = pre.as<PrePlanRec>() + elo;
    for (int64_t cb = 0; cb < nh_bands_; ++cb) {
      const std::vector<TrkRec> trks = load_records<TrkRec>(bfile("htrk", cb, eb));
      for (const TrkRec& t : trks) {
        const int64_t eid = t.eid;
        STARLAY_REQUIRE(eid >= elo && eid < ehi, "sharded: h track out of band");
        PrePlanRec& r = recs[eid - elo];
        STARLAY_REQUIRE(r.cls != kColWire, "sharded: h track for a column wire");
        r.h_track = t.track;
      }
    }
    BucketWriters vint(nv_bands_, [&](int64_t cb) { return bfile("vint", eb, cb); });
    for (int64_t e = elo; e < ehi; ++e) {
      const PrePlanRec& r = recs[e - elo];
      if (r.cls != kColWire)
        STARLAY_REQUIRE(r.h_track >= 0, "sharded: missing horizontal track");
      if (r.cls == kRowWire) continue;
      const int32_t srow = r.src_slot / C_, scol = r.src_slot % C_;
      const int32_t drow = r.dst_slot / C_, dcol = r.dst_slot % C_;
      const int32_t chan = r.cls == kColWire ? scol + 1 : dcol + 1;
      int64_t lo = r.cls == kColWire ? ykey_cell(srow, r.src_off)
                                     : ykey_track(srow + 1, r.h_track);
      int64_t hi = ykey_cell(drow, r.dst_off);
      if (lo > hi) std::swap(lo, hi);
      VIntRec v;
      v.lo = lo;
      v.hi = hi;
      v.eid = static_cast<uint32_t>(e);
      v.chan = chan;
      vint.at(chan / vband_).append_record(v);
    }
    vint.close_all();
    pre.drop_resident(elo * static_cast<int64_t>(sizeof(PrePlanRec)),
                      (ehi - elo) * static_cast<int64_t>(sizeof(PrePlanRec)));
    pre.close();
    for (int64_t cb = 0; cb < nh_bands_; ++cb) rm(bfile("htrk", cb, eb));
  });
  for (int64_t eb = 0; eb < nedge_bands_; ++eb)
    for (int64_t cb = 0; cb < nv_bands_; ++cb) account(bfile("vint", eb, cb));
}

// --- phase 6: vertical packing ---------------------------------------------

void ShardEngine::phase6_vpack() {
  run_tasks("shard_vpack", nv_bands_, [&, this](int64_t cb, int) {
    std::vector<VIntRec> ints;
    for (int64_t eb = 0; eb < nedge_bands_; ++eb) {
      std::vector<VIntRec> part = load_records<VIntRec>(bfile("vint", eb, cb));
      ints.insert(ints.end(), part.begin(), part.end());
    }
    const int64_t chan_lo = cb * vband_;
    const int64_t chan_hi = std::min<int64_t>(VC_, chan_lo + vband_);
    BucketWriters trk(nedge_bands_, [&](int64_t eb) { return bfile("vtrk", cb, eb); });
    const std::vector<int32_t> counts =
        pack_channel_band(ints, chan_lo, chan_hi, trk, band_edges_);
    trk.close_all();
    sup::AppendWriter cw(tfile("vcnt", cb));
    cw.append(counts.data(), counts.size() * sizeof(int32_t));
    cw.close();
    for (int64_t eb = 0; eb < nedge_bands_; ++eb) rm(bfile("vint", eb, cb));
  });

  v_tracks_.assign(static_cast<std::size_t>(VC_), 0);
  for (int64_t cb = 0; cb < nv_bands_; ++cb) {
    for (int64_t eb = 0; eb < nedge_bands_; ++eb) account(bfile("vtrk", cb, eb));
    account(tfile("vcnt", cb));
    const std::vector<int32_t> counts = load_records<int32_t>(tfile("vcnt", cb));
    const int64_t chan_lo = cb * vband_;
    for (std::size_t k = 0; k < counts.size(); ++k)
      v_tracks_[static_cast<std::size_t>(chan_lo) + k] = counts[k];
    rm(tfile("vcnt", cb));
  }
}

// --- geometry: channel prefix positions + analytic bounding box ------------

void ShardEngine::geometry() {
  STARLAY_REQUIRE(h_tracks_[0] == 0 && v_tracks_[0] == 0,
                  "sharded: two-sided routing must leave channel 0 empty");
  chan_x0_.assign(static_cast<std::size_t>(VC_), 0);
  col_x0_.assign(static_cast<std::size_t>(C_), 0);
  chan_y0_.assign(static_cast<std::size_t>(HC_), 0);
  row_y0_.assign(static_cast<std::size_t>(R_), 0);
  lay::Coord pos = 0;
  for (int32_t k = 0; k <= C_; ++k) {
    chan_x0_[static_cast<std::size_t>(k)] = pos;
    pos += v_tracks_[static_cast<std::size_t>(k)];
    if (k < C_) {
      col_x0_[static_cast<std::size_t>(k)] = pos;
      pos += w_;
    }
  }
  pos = 0;
  for (int32_t k = 0; k <= R_; ++k) {
    chan_y0_[static_cast<std::size_t>(k)] = pos;
    pos += h_tracks_[static_cast<std::size_t>(k)];
    if (k < R_) {
      row_y0_[static_cast<std::size_t>(k)] = pos;
      pos += w_;
    }
  }

  // Occupied extremes: grid_factors over-provisions, so the top block rows
  // and right block columns of each level may be entirely empty.
  max_row_ = 0;
  max_col_ = 0;
  for (int j = 0; j < grid_.levels; ++j) {
    const lay::LevelShape sh = grid_.shapes[static_cast<std::size_t>(j)];
    const int32_t count = grid_.digit_count[static_cast<std::size_t>(j)];
    max_row_ += ((count - 1) / sh.cols) * grid_.rstride[static_cast<std::size_t>(j)];
    const int32_t maxc = count >= sh.cols ? sh.cols - 1 : count - 1;
    max_col_ += maxc * grid_.cstride[static_cast<std::size_t>(j)];
  }

  lay::Coord y1 = row_y0_[static_cast<std::size_t>(max_row_)] + w_ - 1;
  for (int32_t k = 0; k <= R_; ++k)
    if (h_tracks_[static_cast<std::size_t>(k)] > 0)
      y1 = std::max(y1, chan_y0_[static_cast<std::size_t>(k)] +
                            h_tracks_[static_cast<std::size_t>(k)] - 1);
  lay::Coord x1 = col_x0_[static_cast<std::size_t>(max_col_)] + w_ - 1;
  for (int32_t k = 0; k <= C_; ++k)
    if (v_tracks_[static_cast<std::size_t>(k)] > 0)
      x1 = std::max(x1, chan_x0_[static_cast<std::size_t>(k)] +
                            v_tracks_[static_cast<std::size_t>(k)] - 1);
  bb_ = {0, 0, x1, y1};
  ybands_ = (y1 >> shift_) + 1;
  xbands_ = (x1 >> shift_) + 1;
}

// --- wire reconstruction (mirrors the router's two-sided emit) -------------

lay::Wire ShardEngine::make_wire(int64_t e, const PrePlanRec& r) const {
  const int32_t srow = r.src_slot / C_, scol = r.src_slot % C_;
  const int32_t drow = r.dst_slot / C_, dcol = r.dst_slot % C_;
  lay::Wire w;
  w.edge = e;
  const auto top = [&](int32_t row, int32_t col, int32_t off) -> lay::Point {
    return {col_x0_[static_cast<std::size_t>(col)] + off,
            row_y0_[static_cast<std::size_t>(row)] + w_ - 1};
  };
  const auto right = [&](int32_t row, int32_t col, int32_t off) -> lay::Point {
    return {col_x0_[static_cast<std::size_t>(col)] + w_ - 1,
            row_y0_[static_cast<std::size_t>(row)] + off};
  };
  switch (r.cls) {
    case kRowWire: {
      const lay::Point sp = top(srow, scol, r.src_off);
      const lay::Point dp = top(drow, dcol, r.dst_off);
      const lay::Coord ty = chan_y0_[static_cast<std::size_t>(srow) + 1] + r.h_track;
      w.push(sp);
      w.push({sp.x, ty});
      w.push({dp.x, ty});
      w.push(dp);
      break;
    }
    case kColWire: {
      const lay::Point sp = right(srow, scol, r.src_off);
      const lay::Point dp = right(drow, dcol, r.dst_off);
      const lay::Coord tx = chan_x0_[static_cast<std::size_t>(scol) + 1] + r.v_track;
      w.push(sp);
      w.push({tx, sp.y});
      w.push({tx, dp.y});
      w.push(dp);
      break;
    }
    default: {
      const lay::Point sp = top(srow, scol, r.src_off);
      const lay::Point dp = right(drow, dcol, r.dst_off);
      const lay::Coord ty = chan_y0_[static_cast<std::size_t>(srow) + 1] + r.h_track;
      const lay::Coord tx = chan_x0_[static_cast<std::size_t>(dcol) + 1] + r.v_track;
      w.push(sp);
      w.push({sp.x, ty});
      w.push({tx, ty});
      w.push({tx, dp.y});
      w.push(dp);
      break;
    }
  }
  return w;
}

namespace {

/// Analytic stand-ins for the graph / node-rect containers the wire rules
/// take.  edge(e).u/.v are *slot ids* (not vertex ranks): endpoint checks
/// are symmetric in u/v, clearance only tests membership, and rank-visible
/// error messages go through the slot-to-rank Name decoder instead.
struct ShardEdge {
  int32_t u, v;
};

}  // namespace

// --- phase 7: per-wire scan -------------------------------------------------

void ShardEngine::phase7_scan() {
  const lay::kernels::KernelTable& K = lay::kernels::active();
  const int max_errors = opt_.validation.max_errors;

  run_tasks("shard_scan", nedge_bands_, [&, this](int64_t eb, int) {
    const int64_t elo = eb * band_edges_;
    const int64_t ehi = std::min(E_, elo + band_edges_);
    sup::MappedFile pre = sup::MappedFile::open(dir_ + "/preplan.bin", true);
    auto* recs = pre.as<PrePlanRec>() + elo;
    for (int64_t cb = 0; cb < nv_bands_; ++cb) {
      const std::vector<TrkRec> trks = load_records<TrkRec>(bfile("vtrk", cb, eb));
      for (const TrkRec& t : trks) {
        const int64_t eid = t.eid;
        STARLAY_REQUIRE(eid >= elo && eid < ehi, "sharded: v track out of band");
        PrePlanRec& r = recs[eid - elo];
        STARLAY_REQUIRE(r.cls != kRowWire, "sharded: v track for a row wire");
        r.v_track = t.track;
      }
    }

    struct GraphView {
      const PrePlanRec* recs;
      int64_t elo, E;
      int64_t num_edges() const { return E; }
      ShardEdge edge(int64_t e) const {
        const PrePlanRec& r = recs[e - elo];
        return {r.src_slot, r.dst_slot};
      }
    };
    const GraphView gview{recs, elo, E_};

    struct RectsView {
      const ShardEngine* eng;
      lay::Rect operator[](std::size_t slot) const {
        return eng->slot_rect(static_cast<int64_t>(slot));
      }
    };
    const RectsView rects{this};

    const IndexView index{this};
    const auto name = [this](int32_t slot) {
      return std::to_string(grid_.rank_of_slot(slot));
    };

    ScanHeader hdr;
    lay::Rect task_bb;
    std::vector<uint64_t> digests;
    std::vector<int64_t> hseg(static_cast<std::size_t>(ybands_), 0);
    std::vector<int64_t> hprobe(static_cast<std::size_t>(ybands_), 0);
    std::vector<int64_t> vseg(static_cast<std::size_t>(xbands_), 0);
    std::vector<int64_t> vprobe(static_cast<std::size_t>(xbands_), 0);
    std::vector<int64_t> via(static_cast<std::size_t>(xbands_), 0);
    std::vector<std::string> msgs;

    for (int64_t c0 = elo; c0 < ehi; c0 += lay::kFingerprintGrain) {
      const int64_t c1 = std::min(ehi, c0 + lay::kFingerprintGrain);
      // Per-chunk error cap, mirroring the certifier's chunk_emit.
      std::vector<std::string> chunk_msgs;
      int64_t chunk_total = 0;
      const auto emit = [&](std::string m) {
        ++chunk_total;
        if (static_cast<int>(chunk_msgs.size()) < max_errors)
          chunk_msgs.push_back(std::move(m));
      };
      // Canonical chunk fold (fingerprint.cpp's fold_chunked inner loop).
      constexpr int64_t kBlock = 1024;
      uint64_t block[kBlock];
      uint64_t lanes[4] = {lay::kFingerprintSeed, lay::kFingerprintSeed,
                           lay::kFingerprintSeed, lay::kFingerprintSeed};
      int64_t nb = 0;

      for (int64_t e = c0; e < c1; ++e) {
        const PrePlanRec& r = recs[e - elo];
        if (r.cls != kRowWire)
          STARLAY_REQUIRE(r.v_track >= 0, "sharded: missing vertical track");
        const lay::Wire w = make_wire(e, r);
        block[nb++] = lay::wire_content_hash(w);
        if (nb == kBlock) {
          K.fold_hashes4(block, nb, lanes);
          nb = 0;
        }
        const lay::WireValueView view(w);
        lay::check_wire_path(view, e, gview, rects, emit);
        lay::check_wire_clearance(view, e, gview, index, rects, emit, name);
        lay::Rect wbb;
        int64_t len = 0;
        for (int p = 0; p < w.npts; ++p) {
          const lay::Point pt = w.pts[static_cast<std::size_t>(p)];
          (void)lay::stream_to32(pt.x);
          (void)lay::stream_to32(pt.y);
          wbb.cover(pt);
          if (p > 0) {
            const lay::Point prev = w.pts[static_cast<std::size_t>(p) - 1];
            len += std::abs(pt.x - prev.x) + std::abs(pt.y - prev.y);
            if (!(pt == prev)) ++hdr.nsegs;
          }
        }
        task_bb.cover(wbb);
        hdr.len += len;
        hdr.len_max = std::max(hdr.len_max, len);
        hdr.max_layer = std::max({hdr.max_layer, static_cast<int32_t>(w.h_layer),
                                  static_cast<int32_t>(w.v_layer)});
        lay::scan_wire(
            w,
            [&](bool horizontal, int16_t, lay::Coord line, lay::Coord, lay::Coord) {
              if (horizontal)
                ++hseg[static_cast<std::size_t>(yband(line))];
              else
                ++vseg[static_cast<std::size_t>(xband(line))];
            },
            [&](lay::Point p, int16_t zlo, int16_t zhi) {
              ++via[static_cast<std::size_t>(xband(p.x))];
              for (int16_t z = zlo; z <= zhi; ++z) {
                if (z % 2 == 1)
                  ++hprobe[static_cast<std::size_t>(yband(p.y))];
                else
                  ++vprobe[static_cast<std::size_t>(xband(p.x))];
              }
            });
      }
      if (nb > 0) K.fold_hashes4(block, nb, lanes);
      uint64_t h = lay::kFingerprintSeed;
      for (const uint64_t lane : lanes)
        h = lay::fingerprint_mix(h, static_cast<int64_t>(lane));
      digests.push_back(h);
      hdr.err_total += chunk_total;
      for (std::string& m : chunk_msgs) {
        if (static_cast<int>(msgs.size()) < max_errors) msgs.push_back(std::move(m));
      }
    }

    hdr.nchunks = static_cast<int64_t>(digests.size());
    hdr.nmsgs = static_cast<int64_t>(msgs.size());
    hdr.bx0 = task_bb.x0;
    hdr.by0 = task_bb.y0;
    hdr.bx1 = task_bb.x1;
    hdr.by1 = task_bb.y1;
    sup::AppendWriter out(tfile("scan", eb));
    out.append_record(hdr);
    out.append(digests.data(), digests.size() * sizeof(uint64_t));
    out.append(hseg.data(), hseg.size() * sizeof(int64_t));
    out.append(hprobe.data(), hprobe.size() * sizeof(int64_t));
    out.append(vseg.data(), vseg.size() * sizeof(int64_t));
    out.append(vprobe.data(), vprobe.size() * sizeof(int64_t));
    out.append(via.data(), via.size() * sizeof(int64_t));
    append_msgs(out, msgs);
    out.close();
    pre.drop_resident(elo * static_cast<int64_t>(sizeof(PrePlanRec)),
                      (ehi - elo) * static_cast<int64_t>(sizeof(PrePlanRec)));
    pre.close();
    for (int64_t cb = 0; cb < nv_bands_; ++cb) rm(bfile("vtrk", cb, eb));
  });
  for (int64_t eb = 0; eb < nedge_bands_; ++eb) account(tfile("scan", eb));
}

// --- merge: reproduce StreamingCertifier::process()'s serial merge ----------

void ShardEngine::merge_scans() {
  tel::ScopedPhase phase("shard_merge");
  const int max_errors = opt_.validation.max_errors;
  lay::ValidationReport& rep = rep_.validation;
  rep_.num_wires = E_;

  // Node pass: every node is a w_ x w_ rect with degree n-1, so one probe
  // vertex tells whether the check emits anything; if so, replicate per
  // vertex in ascending order up to the message cap (mirrors the 4096-
  // grained chunked pass bit-for-bit: same messages, same totals).
  {
    const lay::Rect probe{0, 0, w_ - 1, w_ - 1};
    const int32_t deg = opt_.validation.thompson_node_size ? n_ - 1 : 0;
    std::vector<std::string> probe_msgs;
    lay::check_node_rect(0, probe, deg, opt_.validation.min_node_side,
                         opt_.validation.max_node_side,
                         opt_.validation.thompson_node_size,
                         [&](std::string m) { probe_msgs.push_back(std::move(m)); });
    if (!probe_msgs.empty()) {
      const auto k = static_cast<int64_t>(probe_msgs.size());
      int64_t recorded = 0;
      for (int64_t v = 0; v < N_ && static_cast<int>(rep.errors.size()) < max_errors;
           ++v) {
        lay::check_node_rect(static_cast<int32_t>(v), probe, deg,
                             opt_.validation.min_node_side, opt_.validation.max_node_side,
                             opt_.validation.thompson_node_size, [&](std::string m) {
                               if (static_cast<int>(rep.errors.size()) < max_errors) {
                                 rep.fail(std::move(m), max_errors);
                                 ++recorded;
                               }
                             });
      }
      rep.num_errors_total += N_ * k - recorded;
      rep.ok = false;
    }
  }

  lay::Rect bb;
  bb.cover(lay::Point{0, 0});
  bb.cover(lay::Point{col_x0_[static_cast<std::size_t>(max_col_)] + w_ - 1,
                      row_y0_[static_cast<std::size_t>(max_row_)] + w_ - 1});

  // Pass A merge: all task stats first, then every task's error prefix in
  // task (= chunk) order — exactly the certifier's two merge loops.
  hseg_c_.assign(static_cast<std::size_t>(ybands_), 0);
  hprobe_c_.assign(static_cast<std::size_t>(ybands_), 0);
  vseg_c_.assign(static_cast<std::size_t>(xbands_), 0);
  vprobe_c_.assign(static_cast<std::size_t>(xbands_), 0);
  via_c_.assign(static_cast<std::size_t>(xbands_), 0);
  chunk_digests_.clear();
  struct TaskErrors {
    std::vector<std::string> msgs;
    int64_t total = 0;
  };
  std::vector<TaskErrors> task_errs(static_cast<std::size_t>(nedge_bands_));

  for (int64_t eb = 0; eb < nedge_bands_; ++eb) {
    sup::MappedFile m = sup::MappedFile::open(tfile("scan", eb), false);
    Cursor cur{static_cast<const unsigned char*>(m.data()), m.size()};
    const auto hdr = cur.get<ScanHeader>();
    const lay::Rect tbb{hdr.bx0, hdr.by0, hdr.bx1, hdr.by1};
    bb.cover(tbb);
    rep_.total_wire_length += hdr.len;
    rep_.max_wire_length = std::max(rep_.max_wire_length, hdr.len_max);
    rep_.num_layers = std::max(rep_.num_layers, static_cast<int>(hdr.max_layer));
    rep.num_segments += hdr.nsegs;
    std::vector<uint64_t> digests(static_cast<std::size_t>(hdr.nchunks));
    cur.read(digests.data(), hdr.nchunks * static_cast<int64_t>(sizeof(uint64_t)));
    chunk_digests_.insert(chunk_digests_.end(), digests.begin(), digests.end());
    const auto add_band = [&](std::vector<int64_t>& acc, int64_t nbands) {
      std::vector<int64_t> part(static_cast<std::size_t>(nbands));
      cur.read(part.data(), nbands * static_cast<int64_t>(sizeof(int64_t)));
      for (int64_t b = 0; b < nbands; ++b)
        acc[static_cast<std::size_t>(b)] += part[static_cast<std::size_t>(b)];
    };
    add_band(hseg_c_, ybands_);
    add_band(hprobe_c_, ybands_);
    add_band(vseg_c_, xbands_);
    add_band(vprobe_c_, xbands_);
    add_band(via_c_, xbands_);
    TaskErrors& te = task_errs[static_cast<std::size_t>(eb)];
    te.total = hdr.err_total;
    te.msgs.reserve(static_cast<std::size_t>(hdr.nmsgs));
    for (int64_t i = 0; i < hdr.nmsgs; ++i) te.msgs.push_back(cur.get_str());
    m.close();
    rm(tfile("scan", eb));
  }
  for (TaskErrors& te : task_errs) {
    const auto recorded = static_cast<int64_t>(te.msgs.size());
    for (std::string& m : te.msgs) rep.fail(std::move(m), max_errors);
    rep.num_errors_total += te.total - recorded;
    if (te.total > 0) rep.ok = false;
  }
  rep_.num_replays = 1;

  // Edge/wire bijection holds by construction (eid == wire index), so the
  // duplicate-wire pass contributes nothing.
  rep_.bounding_box = bb;
  STARLAY_REQUIRE(bb == bb_, "sharded: analytic bounding box mismatch");
  rep_.area = bb.area();
  rep.num_layers = rep_.num_layers;
  if (E_ == 0) return;
  rep_.num_replays = 2;

  // Batch plan: the certifier's pack_bands over the same counts, in the
  // same order (horizontal space, vertical space, vias), empties skipped.
  batch_tasks_.clear();
  ybatch_of_.assign(static_cast<std::size_t>(ybands_), -1);
  xbatch_of_.assign(static_cast<std::size_t>(xbands_), -1);
  viabatch_of_.assign(static_cast<std::size_t>(xbands_), -1);
  const auto plan_space = [&](int space, const std::vector<int64_t>& seg_c,
                              const std::vector<int64_t>& probe_c,
                              int64_t seg_bytes, int64_t probe_bytes,
                              std::vector<int64_t>& batch_of) {
    for (const lay::BandBatch& bt :
         lay::pack_bands(seg_c, probe_c, seg_bytes, probe_bytes,
                         opt_.batch_budget_bytes)) {
      if (space == 2 ? bt.nseg == 0 : (bt.nseg == 0 && bt.nprobe == 0)) continue;
      const auto t = static_cast<int64_t>(batch_tasks_.size());
      for (int64_t b = bt.band_lo; b < bt.band_hi; ++b)
        batch_of[static_cast<std::size_t>(b)] = t;
      batch_tasks_.push_back({space, bt});
    }
  };
  plan_space(0, hseg_c_, hprobe_c_, static_cast<int64_t>(sizeof(lay::SegRec)),
             static_cast<int64_t>(sizeof(lay::ProbeRec)), ybatch_of_);
  plan_space(1, vseg_c_, vprobe_c_, static_cast<int64_t>(sizeof(lay::SegRec)),
             static_cast<int64_t>(sizeof(lay::ProbeRec)), xbatch_of_);
  plan_space(2, via_c_, {}, static_cast<int64_t>(sizeof(lay::ViaRec)), 0, viabatch_of_);
}

// --- phase 8: scatter certification records into per-batch buckets ----------

void ShardEngine::phase8_records() {
  if (E_ == 0) return;
  const auto nbatches = static_cast<int64_t>(batch_tasks_.size());
  run_tasks("shard_records", nedge_bands_, [&, this](int64_t eb, int) {
    const int64_t elo = eb * band_edges_;
    const int64_t ehi = std::min(E_, elo + band_edges_);
    sup::MappedFile pre = sup::MappedFile::open(dir_ + "/preplan.bin", false);
    const auto* recs = pre.as<PrePlanRec>() + elo;
    constexpr std::size_t kScatterBuf = 256u << 10;
    BucketWriters segh(nbatches, [&](int64_t t) { return bfile("segh", eb, t); }, kScatterBuf);
    BucketWriters prbh(nbatches, [&](int64_t t) { return bfile("prbh", eb, t); }, kScatterBuf);
    BucketWriters segv(nbatches, [&](int64_t t) { return bfile("segv", eb, t); }, kScatterBuf);
    BucketWriters prbv(nbatches, [&](int64_t t) { return bfile("prbv", eb, t); }, kScatterBuf);
    BucketWriters viaw(nbatches, [&](int64_t t) { return bfile("via", eb, t); }, kScatterBuf);

    for (int64_t e = elo; e < ehi; ++e) {
      const lay::Wire w = make_wire(e, recs[e - elo]);
      lay::scan_wire(
          w,
          [&](bool horizontal, int16_t layer, lay::Coord line, lay::Coord slo,
              lay::Coord shi) {
            const int64_t t = horizontal
                                  ? ybatch_of_[static_cast<std::size_t>(yband(line))]
                                  : xbatch_of_[static_cast<std::size_t>(xband(line))];
            if (t < 0) return;
            lay::SegRec s{lay::stream_to32(line), lay::stream_to32(slo),
                          lay::stream_to32(shi), static_cast<uint32_t>(e), layer};
            (horizontal ? segh : segv).at(t).append_record(s);
          },
          [&](lay::Point p, int16_t zlo, int16_t zhi) {
            const int64_t tv = viabatch_of_[static_cast<std::size_t>(xband(p.x))];
            if (tv >= 0) {
              lay::ViaRec vr{lay::stream_to32(p.x), lay::stream_to32(p.y),
                             static_cast<uint32_t>(e), zlo, zhi};
              viaw.at(tv).append_record(vr);
            }
            for (int16_t z = zlo; z <= zhi; ++z) {
              const bool horizontal = z % 2 == 1;
              const int64_t t = horizontal
                                    ? ybatch_of_[static_cast<std::size_t>(yband(p.y))]
                                    : xbatch_of_[static_cast<std::size_t>(xband(p.x))];
              if (t < 0) continue;
              lay::ProbeRec pr{lay::stream_to32(horizontal ? p.y : p.x),
                               lay::stream_to32(horizontal ? p.x : p.y),
                               static_cast<uint32_t>(e), z};
              (horizontal ? prbh : prbv).at(t).append_record(pr);
            }
          });
    }
    segh.close_all();
    prbh.close_all();
    segv.close_all();
    prbv.close_all();
    viaw.close_all();
    pre.drop_resident(elo * static_cast<int64_t>(sizeof(PrePlanRec)),
                      (ehi - elo) * static_cast<int64_t>(sizeof(PrePlanRec)));
    pre.close();
  });
  for (int64_t eb = 0; eb < nedge_bands_; ++eb)
    for (int64_t t = 0; t < nbatches; ++t)
      for (const char* kind : {"segh", "prbh", "segv", "prbv", "via"})
        account(bfile(kind, eb, t));
}

// --- phase 9: sort + certify each batch -------------------------------------

void ShardEngine::phase9_batches() {
  if (E_ == 0) return;
  const int max_errors = opt_.validation.max_errors;
  const auto batch_tasks = batch_tasks_;
  run_tasks("shard_batch", static_cast<int64_t>(batch_tasks.size()),
            [&, this](int64_t t, int) {
    const BatchTask& bt = batch_tasks[static_cast<std::size_t>(t)];
    lay::ValidationReport local;
    if (bt.space == 2) {
      std::vector<lay::ViaRec> vias;
      for (int64_t eb = 0; eb < nedge_bands_; ++eb) {
        std::vector<lay::ViaRec> part = load_records<lay::ViaRec>(bfile("via", eb, t));
        vias.insert(vias.end(), part.begin(), part.end());
      }
      STARLAY_REQUIRE(static_cast<int64_t>(vias.size()) == bt.bt.nseg,
                      "sharded: batch record counts drifted");
      lay::sort_via_records(vias);
      lay::certify_via_batch(vias, max_errors, local);
      for (int64_t eb = 0; eb < nedge_bands_; ++eb) rm(bfile("via", eb, t));
    } else {
      const char* seg_kind = bt.space == 0 ? "segh" : "segv";
      const char* prb_kind = bt.space == 0 ? "prbh" : "prbv";
      std::vector<lay::SegRec> segs;
      std::vector<lay::ProbeRec> probes;
      for (int64_t eb = 0; eb < nedge_bands_; ++eb) {
        std::vector<lay::SegRec> sp = load_records<lay::SegRec>(bfile(seg_kind, eb, t));
        segs.insert(segs.end(), sp.begin(), sp.end());
        std::vector<lay::ProbeRec> pp =
            load_records<lay::ProbeRec>(bfile(prb_kind, eb, t));
        probes.insert(probes.end(), pp.begin(), pp.end());
      }
      STARLAY_REQUIRE(static_cast<int64_t>(segs.size()) == bt.bt.nseg &&
                          static_cast<int64_t>(probes.size()) == bt.bt.nprobe,
                      "sharded: batch record counts drifted");
      lay::sort_seg_records(segs);
      lay::sort_probe_records(probes);
      lay::certify_seg_batch(segs, probes, bt.space == 0, max_errors, local);
      for (int64_t eb = 0; eb < nedge_bands_; ++eb) {
        rm(bfile(seg_kind, eb, t));
        rm(bfile(prb_kind, eb, t));
      }
    }
    sup::AppendWriter out(tfile("cert", t));
    CertHeader ch;
    ch.total = local.num_errors_total;
    ch.nmsgs = static_cast<int64_t>(local.errors.size());
    out.append_record(ch);
    append_msgs(out, local.errors);
    out.close();
  });

  // Coordinator merge, in canonical batch order: each batch's conflicts
  // prefix-truncate into the shared report exactly as the in-process
  // certifier's cumulative rep would have.
  lay::ValidationReport& rep = rep_.validation;
  for (int64_t t = 0; t < static_cast<int64_t>(batch_tasks_.size()); ++t) {
    account(tfile("cert", t));
    sup::MappedFile m = sup::MappedFile::open(tfile("cert", t), false);
    Cursor cur{static_cast<const unsigned char*>(m.data()), m.size()};
    const auto ch = cur.get<CertHeader>();
    int64_t recorded = 0;
    for (int64_t i = 0; i < ch.nmsgs; ++i) {
      std::string msg = cur.get_str();
      if (static_cast<int>(rep.errors.size()) < max_errors) {
        rep.fail(std::move(msg), max_errors);
        ++recorded;
      }
    }
    rep.num_errors_total += ch.total - recorded;
    if (ch.total > 0) rep.ok = false;
    m.close();
    rm(tfile("cert", t));
    ++rep_.num_batches;
    ++rep_.num_replays;
  }
}

// --- finalize ---------------------------------------------------------------

void ShardEngine::finalize(ShardReport& out) {
  uint64_t h = lay::kFingerprintSeed;
  h = lay::fingerprint_mix(h, E_);
  for (const uint64_t d : chunk_digests_)
    h = lay::fingerprint_mix(h, static_cast<int64_t>(d));
  fingerprint_ = h;

  out.stream = rep_;
  out.wire_fingerprint = fingerprint_;
  out.route.node_size = w_;
  out.route.row_channel_tracks.assign(h_tracks_.begin() + 1, h_tracks_.end());
  out.route.col_channel_tracks.assign(v_tracks_.begin() + 1, v_tracks_.end());
  out.num_shards = static_cast<int>(num_shards_);
  out.num_workers = workers_;
  out.spill_bytes_written = spill_bytes_;
  out.worker_peak_rss_bytes = worker_rss_;
  out.coordinator_peak_rss_bytes = sup::peak_rss_bytes();
  if (!opt_.keep_spill) sup::remove_tree(dir_);
}

ShardReport ShardEngine::run() {
  setup();
  PoolShrinkGuard pool_guard(workers_ > 1);
  phase1_plan();
  phase1b_concat();
  phase2_stubs();
  phase3_hintervals();
  phase4_hpack();
  phase5_vintervals();
  phase6_vpack();
  geometry();
  phase7_scan();
  merge_scans();
  phase8_records();
  phase9_batches();
  ShardReport out;
  finalize(out);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public wrapper
// ---------------------------------------------------------------------------

BuildOutcome<ShardReport> star_certify_sharded(int n, const ShardOptions& opt) {
  if (n < 2 || n > 12) {
    BuildError err;
    err.code = BuildErrorCode::kSizeOutOfRange;
    err.message = "star_certify_sharded: n must be in [2, 12], got " + std::to_string(n);
    err.n_lo = 2;
    err.n_hi = 12;
    return err;
  }
  try {
    ShardEngine engine(n, opt);
    return engine.run();
  } catch (const sup::IoError& e) {
    BuildError err;
    err.code = BuildErrorCode::kIoError;
    err.message = e.what();
    err.io_path = e.path();
    err.io_errno = e.error_code();
    return err;
  } catch (const starlay::InvariantError& e) {
    BuildError err;
    err.code = BuildErrorCode::kBudgetExceeded;
    err.message = e.what();
    return err;
  }
}

}  // namespace starlay::core
