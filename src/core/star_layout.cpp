#include "starlay/core/star_layout.hpp"

#include <algorithm>
#include <cmath>

#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::core {

namespace {

namespace tel = starlay::support::telemetry;

/// Runs \p fn under a named telemetry span and returns its result.
template <typename Fn>
auto timed(std::string_view name, Fn&& fn) {
  tel::ScopedPhase phase(name);
  return fn();
}

}  // namespace

std::vector<layout::LevelShape> star_level_shapes(int n, int base_size) {
  STARLAY_REQUIRE(n >= 2 && n <= 12, "star_structure: n must be in [2, 12]");
  STARLAY_REQUIRE(base_size >= 2 && base_size <= n, "star_structure: base_size in [2, n]");
  // Level shapes: the level-j block grid is ceil(sqrt(j)) x ceil(j / rows)
  // for j = n .. base_size+1, then the base blocks' own near-square grid.
  // Each level may be transposed: grid_factors always returns rows >= cols,
  // and stacking several such levels would skew the global slot grid (and
  // with it the H/V channel balance) far from square.  Greedily orient each
  // level to keep the running row/column products balanced.
  std::vector<layout::LevelShape> shapes;
  double log_rows = 0.0, log_cols = 0.0;
  const auto push_balanced = [&](starlay::GridFactors f) {
    const double lr = std::log(static_cast<double>(f.rows));
    const double lc = std::log(static_cast<double>(f.cols));
    const double keep = std::abs((log_rows + lr) - (log_cols + lc));
    const double swap = std::abs((log_rows + lc) - (log_cols + lr));
    if (swap < keep) std::swap(f.rows, f.cols);
    log_rows += std::log(static_cast<double>(f.rows));
    log_cols += std::log(static_cast<double>(f.cols));
    shapes.push_back({f.rows, f.cols});
  };
  for (int j = n; j > base_size; --j) push_balanced(starlay::grid_factors(j));
  push_balanced(starlay::grid_factors(static_cast<int>(starlay::factorial(base_size))));
  return shapes;
}

StarStructure star_structure(int n, int base_size) {
  StarStructure s;
  s.n = n;
  s.base_size = base_size;
  s.shapes = star_level_shapes(n, base_size);

  // Digit paths for all n! vertices: substar digits (outermost first) plus
  // the base-block rank as the final, finest-level digit.  Vertex rank
  // order is lexicographic, so each chunk seeds one unrank and then walks
  // its ranks with the incremental enumerator, writing into its disjoint
  // slice of the flat buffer — bit-identical for every thread count.
  const std::int64_t N = starlay::factorial(n);
  const std::int32_t stride = n - base_size + 1;
  {
    tel::ScopedPhase phase("enumeration");
    s.paths.stride = stride;
    s.paths.flat.resize(static_cast<std::size_t>(N * stride));
    std::int32_t* flat = s.paths.flat.data();
    support::parallel_for(0, N, 4096, [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
      topology::StarPathEnumerator en(lo, n, base_size);
      for (std::int64_t r = lo; r < hi; ++r) {
        std::int32_t* out = flat + r * stride;
        for (std::int32_t d = 0; d + 1 < stride; ++d) out[d] = en.digit(d);
        out[stride - 1] = en.base_rank();
        if (r + 1 < hi) en.advance();
      }
    });
    tel::count("enum.paths", N);
  }
  s.placement = layout::hierarchical_placement(s.paths.flat.data(), stride, N, s.shapes);
  return s;
}

layout::RouteSpec star_route_spec(const topology::Graph& g, const StarStructure& s,
                                  int level_shift) {
  std::vector<int> levels(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e)
    levels[static_cast<std::size_t>(e)] = g.edge(e).label + level_shift;
  return star_route_spec_levels(g, s, levels);
}

layout::RouteSpec star_route_spec_levels(const topology::Graph& g, const StarStructure& s,
                                         const std::vector<int>& edge_level) {
  STARLAY_REQUIRE(edge_level.size() == static_cast<std::size_t>(g.num_edges()),
                  "star_route_spec_levels: level table size mismatch");
  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  const auto orient = [&](std::int64_t e) -> bool {
    const auto& ed = g.edge(e);
    const int level = edge_level[static_cast<std::size_t>(e)];
    if (level > s.base_size && level <= s.n) {
      // Inter-block link of the level's complete graph: parity rule on
      // block rows, falling back to block columns when the rows agree.
      const std::int32_t depth = s.n - level;
      const std::int32_t du = s.paths.digit(ed.u, depth);
      const std::int32_t dv = s.paths.digit(ed.v, depth);
      const std::int32_t cols = s.shapes[static_cast<std::size_t>(depth)].cols;
      const std::int32_t bru = du / cols, brv = dv / cols;
      if (bru != brv) return layout::parity_source_is_first(bru, brv);
      const std::int32_t bcu = du % cols, bcv = dv % cols;
      STARLAY_REQUIRE(bcu != bcv, "star_route_spec: identical block digits");
      return layout::parity_source_is_first(bcu, bcv);
    }
    // Intra-base-block link: parity rule at node granularity.
    const std::int32_t ru = s.placement.row_of(ed.u);
    const std::int32_t rv = s.placement.row_of(ed.v);
    return ru == rv || layout::parity_source_is_first(ru, rv);
  };
  tel::ScopedPhase phase("route_spec");
  support::parallel_for(0, g.num_edges(), 8192,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t) {
                          for (std::int64_t e = lo; e < hi; ++e)
                            spec.source_is_u[static_cast<std::size_t>(e)] = orient(e) ? 1 : 0;
                        });
  return spec;
}

namespace {

topology::Graph family_graph(PermutationFamily family, int n) {
  tel::ScopedPhase phase("topology");
  switch (family) {
    case PermutationFamily::kStar:
      return topology::star_graph(n);
    case PermutationFamily::kPancake:
      return topology::pancake_graph(n);
    case PermutationFamily::kBubbleSort:
      return topology::bubble_sort_graph(n);
  }
  STARLAY_REQUIRE(false, "permutation_layout: unknown family");
  return topology::star_graph(n);
}

/// Generator label l of the transposition graph enumerates pairs (i, j),
/// i < j, in i-major order; the edge's hierarchy level is j (the larger
/// moved position).
std::vector<int> transposition_levels(const topology::Graph& g, int n) {
  std::vector<int> label_to_level;
  for (int i = 1; i <= n; ++i)
    for (int j = i + 1; j <= n; ++j) label_to_level.push_back(j);
  std::vector<int> levels(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e)
    levels[static_cast<std::size_t>(e)] =
        label_to_level[static_cast<std::size_t>(g.edge(e).label)];
  return levels;
}

/// Drops everything the router does not need — the digit-path buffer
/// (spec is already computed) and the CSR adjacency (only degrees are
/// consulted downstream) — so the streaming paths peak on plan tables
/// plus one certifier tile, not on the hierarchy bookkeeping.
void shed_for_streaming(StarStructure& s, topology::Graph& g) {
  std::vector<std::int32_t>().swap(s.paths.flat);
  s.paths.stride = 0;
  g.release_adjacency();
}

/// Shared pipeline assembly for every star-machinery family.  The front
/// hook enumerates the hierarchy and derives graph + route spec (in the
/// same order, under the same spans, as the historical monolithic path);
/// respec re-derives orientations after a placement-mutating pass while
/// the digit paths are still alive; shed frees enumeration scaffolding
/// right before routing allocates.
layout::RouteStats run_star_pipeline(
    int n, int base_size, const PassList& passes, layout::WireSink& sink,
    topology::Graph* graph_out, PassMetrics* metrics_out, layout::RouterOptions router_options,
    const std::function<topology::Graph()>& make_graph,
    const std::function<layout::RouteSpec(const topology::Graph&, const StarStructure&)>&
        make_spec) {
  base_size = std::min(base_size, n);
  auto state = std::make_shared<StarStructure>();
  PassContext ctx;
  ctx.family_state = state;
  ctx.sink = &sink;
  ctx.router_options = router_options;
  ctx.front = [&, base_size](PassContext& c) {
    *state = star_structure(n, base_size);
    c.graph = make_graph();
    c.placement = &state->placement;
    c.spec = make_spec(c.graph, *state);
  };
  ctx.respec = [&](PassContext& c) { c.spec = make_spec(c.graph, *state); };
  ctx.shed = [state](PassContext& c) { shed_for_streaming(*state, c.graph); };
  layout::RouteStats stats = run_layout_pipeline(ctx, passes);
  if (graph_out) *graph_out = std::move(ctx.graph);
  if (metrics_out) *metrics_out = ctx.metrics;
  return stats;
}

}  // namespace

StarLayoutResult star_layout(int n, int base_size) {
  return permutation_layout(PermutationFamily::kStar, n, base_size);
}

StarLayoutResult transposition_layout(int n, int base_size) {
  base_size = std::min(base_size, n);
  StarStructure s = star_structure(n, base_size);
  topology::Graph g = timed("topology", [&] { return topology::transposition_graph(n); });
  const layout::RouteSpec spec = star_route_spec_levels(g, s, transposition_levels(g, n));
  layout::RoutedLayout routed = layout::route_grid(g, s.placement, spec);
  return {std::move(g), std::move(s), std::move(routed)};
}

StarLayoutResult star_layout_compact(int n, int base_size) {
  base_size = std::min(base_size, n);
  StarStructure s = star_structure(n, base_size);
  topology::Graph g = timed("topology", [&] { return topology::star_graph(n); });
  const layout::RouteSpec spec = star_route_spec(g, s);
  layout::RouterOptions opt;
  opt.four_sided = true;  // node_size auto-shrinks to the stub demand
  layout::RoutedLayout routed = layout::route_grid(g, s.placement, spec, opt);
  return {std::move(g), std::move(s), std::move(routed)};
}

StarLayoutResult permutation_layout(PermutationFamily family, int n, int base_size) {
  base_size = std::min(base_size, n);
  StarStructure s = star_structure(n, base_size);
  topology::Graph g = family_graph(family, n);
  const int level_shift = family == PermutationFamily::kBubbleSort ? 1 : 0;
  const layout::RouteSpec spec = star_route_spec(g, s, level_shift);
  layout::RoutedLayout routed = layout::route_grid(g, s.placement, spec);
  return {std::move(g), std::move(s), std::move(routed)};
}

layout::RouteStats permutation_layout_stream(PermutationFamily family, int n,
                                             layout::WireSink& sink, int base_size,
                                             topology::Graph* graph_out) {
  return permutation_layout_stream_passes(family, n, {}, sink, base_size, graph_out);
}

layout::RouteStats star_layout_stream(int n, layout::WireSink& sink, int base_size,
                                      topology::Graph* graph_out) {
  return permutation_layout_stream(PermutationFamily::kStar, n, sink, base_size, graph_out);
}

layout::RouteStats star_layout_compact_stream(int n, layout::WireSink& sink, int base_size,
                                              topology::Graph* graph_out) {
  return star_layout_compact_stream_passes(n, {}, sink, base_size, graph_out);
}

layout::RouteStats transposition_layout_stream(int n, layout::WireSink& sink, int base_size,
                                               topology::Graph* graph_out) {
  return transposition_layout_stream_passes(n, {}, sink, base_size, graph_out);
}

layout::RouteStats permutation_layout_stream_passes(PermutationFamily family, int n,
                                                    const PassList& passes,
                                                    layout::WireSink& sink, int base_size,
                                                    topology::Graph* graph_out,
                                                    PassMetrics* metrics_out) {
  const int level_shift = family == PermutationFamily::kBubbleSort ? 1 : 0;
  return run_star_pipeline(
      n, base_size, passes, sink, graph_out, metrics_out, {},
      [&] { return family_graph(family, n); },
      [&](const topology::Graph& g, const StarStructure& s) {
        return star_route_spec(g, s, level_shift);
      });
}

layout::RouteStats star_layout_stream_passes(int n, const PassList& passes,
                                             layout::WireSink& sink, int base_size,
                                             topology::Graph* graph_out,
                                             PassMetrics* metrics_out) {
  return permutation_layout_stream_passes(PermutationFamily::kStar, n, passes, sink, base_size,
                                          graph_out, metrics_out);
}

layout::RouteStats star_layout_compact_stream_passes(int n, const PassList& passes,
                                                     layout::WireSink& sink, int base_size,
                                                     topology::Graph* graph_out,
                                                     PassMetrics* metrics_out) {
  layout::RouterOptions opt;
  opt.four_sided = true;  // node_size auto-shrinks to the stub demand
  return run_star_pipeline(
      n, base_size, passes, sink, graph_out, metrics_out, opt,
      [&] { return family_graph(PermutationFamily::kStar, n); },
      [](const topology::Graph& g, const StarStructure& s) { return star_route_spec(g, s); });
}

layout::RouteStats transposition_layout_stream_passes(int n, const PassList& passes,
                                                      layout::WireSink& sink, int base_size,
                                                      topology::Graph* graph_out,
                                                      PassMetrics* metrics_out) {
  return run_star_pipeline(
      n, base_size, passes, sink, graph_out, metrics_out, {},
      [&] { return timed("topology", [&] { return topology::transposition_graph(n); }); },
      [n](const topology::Graph& g, const StarStructure& s) {
        return star_route_spec_levels(g, s, transposition_levels(g, n));
      });
}

}  // namespace starlay::core
