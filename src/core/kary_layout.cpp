#include "starlay/core/kary_layout.hpp"

#include "starlay/core/formulas.hpp"
#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

layout::Placement threeary_cube_placement(int n) {
  STARLAY_REQUIRE(n >= 1, "threeary_cube_placement: n must be >= 1");
  const int row_digits = n / 2;  // low digits index the row
  const std::int32_t rows = static_cast<std::int32_t>(int_pow(3, row_digits));
  const std::int32_t cols = static_cast<std::int32_t>(int_pow(3, n - row_digits));
  layout::Placement p;
  p.rows = rows;
  p.cols = cols;
  const std::int32_t N = static_cast<std::int32_t>(int_pow(3, n));
  p.slot.resize(static_cast<std::size_t>(N));
  for (std::int32_t v = 0; v < N; ++v) {
    const std::int32_t r = v % rows;
    const std::int32_t c = v / rows;
    p.slot[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(r) * cols + c;
  }
  return p;
}

KaryLayoutResult threeary_cube_layout(int n) {
  topology::Graph g = topology::threeary_cube(n);
  const layout::Placement p = threeary_cube_placement(n);
  layout::RoutedLayout routed = layout::route_grid(g, p);
  return {std::move(g), std::move(routed)};
}

layout::RouteStats threeary_cube_layout_stream(int n, layout::WireSink& sink,
                                               topology::Graph* graph_out) {
  topology::Graph g = topology::threeary_cube(n);
  const layout::Placement p = threeary_cube_placement(n);
  g.release_adjacency();
  layout::RouteStats stats = layout::route_grid_stream(g, p, {}, {}, sink);
  if (graph_out) *graph_out = std::move(g);
  return stats;
}

}  // namespace starlay::core
