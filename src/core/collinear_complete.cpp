#include "starlay/core/collinear_complete.hpp"

#include <algorithm>

#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

namespace {

/// The paper's explicit track rule, emitted directly as geometry.  Nodes
/// sit in a row (side w = degree); each node's stub for the link to node j
/// is at x-offset j (left neighbors) or j-1 (right neighbors), which puts
/// all left-bound stubs left of all right-bound ones — the ordering that
/// lets chained same-type links share a track.  Returns the track count.
std::int32_t paper_rule_stream(const topology::Graph& g, int m, int multiplicity,
                               layout::WireSink& sink) {
  const auto w = static_cast<layout::Coord>(std::max(1, (m - 1) * multiplicity));
  std::vector<layout::Rect> rects(static_cast<std::size_t>(m));
  for (std::int32_t v = 0; v < m; ++v) {
    const layout::Coord x0 = v * w;
    rects[static_cast<std::size_t>(v)] = {x0, 0, x0 + w - 1, w - 1};
  }

  // Track base offset of each link type: type i gets min(i, m-i) tracks
  // per multiplicity copy.
  std::vector<std::int32_t> type_base(static_cast<std::size_t>(m), 0);
  std::int32_t total = 0;
  for (int i = 1; i < m; ++i) {
    type_base[static_cast<std::size_t>(i)] = total;
    total += std::min(i, m - i) * multiplicity;
  }

  const auto stub_off = [&](std::int32_t at, std::int32_t other, std::int32_t copy) {
    // Offsets 0..(m-2)*mult: left-destined copies first, ascending.
    const std::int32_t base = other < at ? other : other - 1;
    return base * multiplicity + copy;
  };

  sink.begin(g, std::move(rects));
  sink.emit_bulk(g.num_edges(), 4096, [&](std::int64_t e, layout::Wire& wire) {
    const auto& ed = g.edge(e);
    const std::int32_t u = ed.u, v = ed.v, copy = ed.label;
    const std::int32_t i = v - u;  // type
    std::int32_t track_in_type;
    if (i <= m / 2)
      track_in_type = u % i;
    else
      track_in_type = u;  // each of the m-i links gets its own track
    const std::int32_t track = type_base[static_cast<std::size_t>(i)] +
                               track_in_type * multiplicity + copy;
    const layout::Coord y = w + track;
    const layout::Coord xs = u * w + stub_off(u, v, copy);
    const layout::Coord xd = v * w + stub_off(v, u, copy);
    wire.edge = e;
    wire.push({xs, w - 1});
    wire.push({xs, y});
    wire.push({xd, y});
    wire.push({xd, w - 1});
  });
  sink.end();
  return total;
}

CollinearResult paper_rule_layout(int m, int multiplicity) {
  topology::Graph g = topology::complete_graph(m, multiplicity);
  layout::MaterializingSink sink;
  const std::int32_t total = paper_rule_stream(g, m, multiplicity, sink);
  const auto w = static_cast<layout::Coord>(std::max(1, (m - 1) * multiplicity));
  layout::RoutedLayout routed{sink.take_layout(),
                              {total},
                              std::vector<std::int32_t>(static_cast<std::size_t>(m), 0),
                              w};
  return {std::move(g), std::move(routed), total};
}

}  // namespace

CollinearResult collinear_complete_layout(int m, TrackBackend backend, int multiplicity) {
  STARLAY_REQUIRE(m >= 2, "collinear_complete_layout: m must be >= 2");
  STARLAY_REQUIRE(multiplicity >= 1, "collinear_complete_layout: multiplicity >= 1");
  if (backend == TrackBackend::kPaperRule) return paper_rule_layout(m, multiplicity);

  topology::Graph g = topology::complete_graph(m, multiplicity);
  const layout::Placement p = layout::collinear_placement(m);
  layout::RoutedLayout routed = layout::route_grid(g, p);
  const std::int32_t tracks = routed.row_channel_tracks.at(0);
  return {std::move(g), std::move(routed), tracks};
}

layout::RouteStats collinear_complete_layout_stream(int m, layout::WireSink& sink,
                                                    TrackBackend backend, int multiplicity,
                                                    topology::Graph* graph_out) {
  STARLAY_REQUIRE(m >= 2, "collinear_complete_layout_stream: m must be >= 2");
  STARLAY_REQUIRE(multiplicity >= 1, "collinear_complete_layout_stream: multiplicity >= 1");
  topology::Graph g = topology::complete_graph(m, multiplicity);
  layout::RouteStats stats;
  if (backend == TrackBackend::kPaperRule) {
    g.release_adjacency();
    const std::int32_t total = paper_rule_stream(g, m, multiplicity, sink);
    stats.row_channel_tracks = {total};
    stats.col_channel_tracks.assign(static_cast<std::size_t>(m), 0);
    stats.node_size = static_cast<layout::Coord>(std::max(1, (m - 1) * multiplicity));
  } else {
    const layout::Placement p = layout::collinear_placement(m);
    g.release_adjacency();
    stats = layout::route_grid_stream(g, p, {}, {}, sink);
  }
  if (graph_out) *graph_out = std::move(g);
  return stats;
}

}  // namespace starlay::core
