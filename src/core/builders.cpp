#include "starlay/core/builder.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <functional>
#include <optional>
#include <string>

#include "starlay/core/baseline.hpp"
#include "starlay/core/build_request.hpp"
#include "starlay/core/collinear_complete.hpp"
#include "starlay/core/complete2d.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/core/hypercube_layout.hpp"
#include "starlay/core/kary_layout.hpp"
#include "starlay/core/multilayer_star.hpp"
#include "starlay/core/formulas.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/core/suggest.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

namespace {

namespace tel = starlay::support::telemetry;

using BuildFn = std::function<BuildResult(const BuildParams&)>;
using StreamFn =
    std::function<layout::RouteStats(const BuildParams&, layout::WireSink&, topology::Graph*)>;
using PassStreamFn = std::function<layout::RouteStats(const BuildParams&, const PassList&,
                                                      layout::WireSink&, topology::Graph*)>;

class FnBuilder final : public LayoutBuilder {
 public:
  FnBuilder(std::string name, std::string description, std::pair<int, int> n_range,
            unsigned params_used, BuildFn build, StreamFn stream,
            std::optional<BoundSpec> bounds = std::nullopt, PassStreamFn pass_stream = {})
      : name_(std::move(name)),
        description_(std::move(description)),
        trace_name_("build." + name_),
        n_range_(n_range),
        params_used_(params_used),
        build_(std::move(build)),
        stream_(std::move(stream)),
        pass_stream_(std::move(pass_stream)),
        bounds_(std::move(bounds)) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  std::pair<int, int> n_range() const override { return n_range_; }
  unsigned params_used() const override { return params_used_; }
  const BoundSpec* bound_spec() const override { return bounds_ ? &*bounds_ : nullptr; }

  BuildResult build(const BuildParams& params) const override {
    check_range(params);
    tel::ScopedPhase phase(trace_name_);
    return build_(params);
  }

  layout::RouteStats build_stream(const BuildParams& params, layout::WireSink& sink,
                                  topology::Graph* graph_out) const override {
    check_range(params);
    tel::ScopedPhase phase(trace_name_);
    return stream_(params, sink, graph_out);
  }

  bool supports_passes() const override { return static_cast<bool>(pass_stream_); }

  layout::RouteStats build_stream_passes(const BuildParams& params, const PassList& passes,
                                         layout::WireSink& sink,
                                         topology::Graph* graph_out) const override {
    if (!pass_stream_)
      return LayoutBuilder::build_stream_passes(params, passes, sink, graph_out);
    check_range(params);
    tel::ScopedPhase phase(trace_name_);
    return pass_stream_(params, passes, sink, graph_out);
  }

 private:
  void check_range(const BuildParams& params) const {
    STARLAY_REQUIRE(params.n >= n_range_.first && params.n <= n_range_.second,
                    "builder: n outside the family's valid range");
  }

  std::string name_;
  std::string description_;
  std::string trace_name_;  ///< "build.<family>", precomputed so the hot hook allocates nothing
  std::pair<int, int> n_range_;
  unsigned params_used_;
  BuildFn build_;
  StreamFn stream_;
  PassStreamFn pass_stream_;  ///< empty = identity pipeline only
  std::optional<BoundSpec> bounds_;
};

BuildResult from_star(StarLayoutResult r) { return {std::move(r.graph), std::move(r.routed)}; }
BuildResult from_hcn(HcnLayoutResult r) { return {std::move(r.graph), std::move(r.routed)}; }

/// The baselines need a subject network; the n-star is the repo's standard
/// ablation subject (EXPERIMENTS.md, E11).
topology::Graph baseline_subject(int n) { return topology::star_graph(n); }

double fact(int n) {
  double f = 1.0;
  for (int i = 2; i <= n; ++i) f *= i;
  return f;
}

double two_pow(int e) { return std::ldexp(1.0, e); }

/// Exact layer count of an X-Y multilayer layout: xy_layer_pairs(L) hands
/// out (h, v) pairs whose maximum member is L for even L (top pair
/// (L-1, L)) and also L for odd L (the extra horizontal layer L is shared
/// by the last pair), so a build with enough wires touches layer L.
int multilayer_layers(int layers) { return layers; }

/// Collinear channel height (Lemma 2.1a): floor(m^2/4) tracks, scaled by
/// edge multiplicity (the cut density scales linearly with it).
std::int64_t collinear_tracks(const BuildParams& p) {
  return p.multiplicity * collinear_complete_tracks(p.n);
}

const std::vector<FnBuilder>& registry() {
  // Function-local so registration cannot be dropped by the linker and
  // needs no static-init ordering.
  static const std::vector<FnBuilder> builders = [] {
    std::vector<FnBuilder> b;
    const auto add = [&](std::string name, std::string desc, std::pair<int, int> range,
                         unsigned used, BuildFn build, StreamFn stream,
                         std::optional<BoundSpec> bounds = std::nullopt,
                         PassStreamFn pass_stream = {}) {
      b.emplace_back(std::move(name), std::move(desc), range, used, std::move(build),
                     std::move(stream), std::move(bounds), std::move(pass_stream));
    };
    constexpr unsigned kUsesNone = 0;

    // Shared BoundSpec pieces.  Slack factors are calibrated with
    // `starcheck --calibrate` (the measured worst ratio over the fuzzable
    // size range, rounded up); tightening them is a feature, loosening one
    // means the constant factor of a construction regressed.
    const auto two_layers = [](const BuildParams&) { return 2; };
    const auto ml_layers = [](const BuildParams& p) { return multilayer_layers(p.layers); };

    // Attaches the exact host-embedding wirelength claims (declared after
    // `claim` in BoundSpec, so they are set by name rather than position).
    using WlFn = std::function<std::int64_t(const BuildParams&)>;
    const auto with_wl = [](BoundSpec spec, WlFn grid, WlFn cylinder = nullptr,
                            WlFn tree = nullptr) {
      spec.wl_grid_exact = std::move(grid);
      spec.wl_cylinder_exact = std::move(cylinder);
      spec.wl_tree_exact = std::move(tree);
      return spec;
    };

    add("star", "n-star graph, optimal N^2/16 hierarchical layout (Lemma 2.2)", {2, 12},
        kParamBaseSize,
        [](const BuildParams& p) { return from_star(star_layout(p.n, p.base_size)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return star_layout_stream(p.n, s, p.base_size, g);
        },
        BoundSpec{[](const BuildParams& p) { return star_area(fact(p.n)); }, 32.0, 5, nullptr,
                  two_layers, "Lemma 2.2 / Theorem 3.7: area N^2/16 + o(N^2)"},
        [](const BuildParams& p, const PassList& passes, layout::WireSink& s,
           topology::Graph* g) {
          return star_layout_stream_passes(p.n, passes, s, p.base_size, g);
        });
    add("star-compact", "n-star with four-sided attachments (Theorem 3.7 node window)",
        {2, 12}, kParamBaseSize,
        [](const BuildParams& p) { return from_star(star_layout_compact(p.n, p.base_size)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return star_layout_compact_stream(p.n, s, p.base_size, g);
        },
        BoundSpec{[](const BuildParams& p) { return star_area(fact(p.n)); }, 32.0, 5, nullptr,
                  two_layers, "Lemma 2.2 / Theorem 3.7 (extended-grid nodes)"},
        [](const BuildParams& p, const PassList& passes, layout::WireSink& s,
           topology::Graph* g) {
          return star_layout_compact_stream_passes(p.n, passes, s, p.base_size, g);
        });
    add("pancake", "n-pancake graph via the star hierarchy machinery", {2, 12},
        kParamBaseSize,
        [](const BuildParams& p) {
          return from_star(permutation_layout(PermutationFamily::kPancake, p.n, p.base_size));
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return permutation_layout_stream(PermutationFamily::kPancake, p.n, s, p.base_size, g);
        },
        BoundSpec{[](const BuildParams& p) { return star_area(fact(p.n)); }, 32.0, 5, nullptr,
                  two_layers, "Lemma 2.2 machinery (degree-(n-1) permutation graph)"},
        [](const BuildParams& p, const PassList& passes, layout::WireSink& s,
           topology::Graph* g) {
          return permutation_layout_stream_passes(PermutationFamily::kPancake, p.n, passes, s,
                                                  p.base_size, g);
        });
    add("bubble-sort", "n-bubble-sort graph via the star hierarchy machinery", {2, 12},
        kParamBaseSize,
        [](const BuildParams& p) {
          return from_star(
              permutation_layout(PermutationFamily::kBubbleSort, p.n, p.base_size));
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return permutation_layout_stream(PermutationFamily::kBubbleSort, p.n, s, p.base_size,
                                           g);
        },
        BoundSpec{[](const BuildParams& p) { return star_area(fact(p.n)); }, 32.0, 5, nullptr,
                  two_layers, "Lemma 2.2 machinery (degree-(n-1) permutation graph)"},
        [](const BuildParams& p, const PassList& passes, layout::WireSink& s,
           topology::Graph* g) {
          return permutation_layout_stream_passes(PermutationFamily::kBubbleSort, p.n, passes,
                                                  s, p.base_size, g);
        });
    add("transposition", "complete transposition graph (Section 2.4 remark)", {2, 12},
        kParamBaseSize,
        [](const BuildParams& p) { return from_star(transposition_layout(p.n, p.base_size)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return transposition_layout_stream(p.n, s, p.base_size, g);
        },
        // No area claim: degree Theta(n^2) puts it outside Lemma 2.2's form.
        BoundSpec{nullptr, 0.0, 0, nullptr, two_layers, "Section 2.4 remark"},
        [](const BuildParams& p, const PassList& passes, layout::WireSink& s,
           topology::Graph* g) {
          return transposition_layout_stream_passes(p.n, passes, s, p.base_size, g);
        });
    add("multilayer-star", "L-layer X-Y star layout, area ~N^2/(4L^2) (Lemma 2.3)", {2, 12},
        kParamBaseSize | kParamLayers,
        [](const BuildParams& p) {
          MultilayerStarResult r = multilayer_star_layout(p.n, p.layers, p.base_size);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return multilayer_star_layout_stream(p.n, p.layers, s, p.base_size, g);
        },
        BoundSpec{[](const BuildParams& p) { return multilayer_star_area(fact(p.n), 2); },
                  32.0, 5, nullptr, ml_layers,
                  "Lemma 2.3 / Theorem 3.8: area N^2/(4L^2); the 1/L^2 factor is "
                  "asymptotic, finite sizes are bounded by the 2-layer leading term"});
    add("hcn", "hierarchical cubic network HCN(h, h), N = 2^(2h) (Lemma 2.4)", {1, 8},
        kUsesNone, [](const BuildParams& p) { return from_hcn(hcn_layout(p.n)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return hcn_layout_stream(p.n, s, g);
        },
        BoundSpec{[](const BuildParams& p) { return hcn_area(two_pow(2 * p.n)); }, 36.0, 3,
                  nullptr, two_layers, "Lemma 2.4 / Theorem 3.10: area N^2/16 + o(N^2)"});
    add("hfn", "hierarchical folded-hypercube network HFN(h, h) (Lemma 2.4)", {1, 8},
        kUsesNone, [](const BuildParams& p) { return from_hcn(hfn_layout(p.n)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return hfn_layout_stream(p.n, s, g);
        },
        BoundSpec{[](const BuildParams& p) { return hcn_area(two_pow(2 * p.n)); }, 56.0, 3,
                  nullptr, two_layers, "Lemma 2.4 / Theorem 3.10: area N^2/16 + o(N^2)"});
    add("multilayer-hcn", "L-layer X-Y HCN layout (Section 2.4 remark)", {1, 8},
        kParamLayers,
        [](const BuildParams& p) { return from_hcn(multilayer_hcn_layout(p.n, p.layers)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return multilayer_hcn_layout_stream(p.n, p.layers, s, g);
        },
        BoundSpec{[](const BuildParams& p) { return multilayer_star_area(two_pow(2 * p.n), 2); },
                  36.0, 3, nullptr, ml_layers,
                  "Section 2.4 remark: X-Y HCN, area N^2/(4L^2); finite sizes bounded "
                  "by the 2-layer leading term"});
    add("multilayer-hfn", "L-layer X-Y HFN layout (Section 2.4 remark)", {1, 8},
        kParamLayers,
        [](const BuildParams& p) { return from_hcn(multilayer_hfn_layout(p.n, p.layers)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return multilayer_hfn_layout_stream(p.n, p.layers, s, g);
        },
        BoundSpec{[](const BuildParams& p) { return multilayer_star_area(two_pow(2 * p.n), 2); },
                  56.0, 3, nullptr, ml_layers,
                  "Section 2.4 remark: X-Y HFN, area N^2/(4L^2); finite sizes bounded "
                  "by the 2-layer leading term"});
    add("hypercube", "d-dimensional hypercube, bit-split placement", {1, 16}, kUsesNone,
        [](const BuildParams& p) {
          HypercubeLayoutResult r = hypercube_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return hypercube_layout_stream(p.n, s, g);
        },
        with_wl(BoundSpec{[](const BuildParams& p) { return hypercube_area(two_pow(p.n)); },
                          12.0, 4, nullptr, two_layers,
                          "Yeh-Varvarigos-Parhami [28]: area (4/9)N^2"},
                [](const BuildParams& p) { return hypercube_grid_wirelength(p.n); }));
    add("folded-hypercube", "d-dimensional folded hypercube, bit-split placement", {1, 16},
        kUsesNone,
        [](const BuildParams& p) {
          HypercubeLayoutResult r = folded_hypercube_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return folded_hypercube_layout_stream(p.n, s, g);
        },
        // Doubled link count roughly quadruples the area of [28]'s bound.
        with_wl(BoundSpec{[](const BuildParams& p) { return 4.0 * hypercube_area(two_pow(p.n)); },
                          8.0, 4, nullptr, two_layers, "[28] baseline, folded variant"},
                [](const BuildParams& p) { return folded_hypercube_grid_wirelength(p.n); }));
    add("enhanced-hypercube",
        "enhanced hypercube Q(d, 2) (Tzeng-Wei partial complement links)", {2, 16}, kUsesNone,
        [](const BuildParams& p) {
          HypercubeLayoutResult r = enhanced_hypercube_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return enhanced_hypercube_layout_stream(p.n, s, g);
        },
        // Degree d+1 like the folded cube, so the same quadrupled [28] bound.
        with_wl(BoundSpec{[](const BuildParams& p) { return 4.0 * hypercube_area(two_pow(p.n)); },
                          8.0, 4, nullptr, two_layers,
                          "[28] baseline, Tzeng-Wei Q(d,2) variant"},
                [](const BuildParams& p) { return enhanced_hypercube_grid_wirelength(p.n); }));
    add("3ary-cube", "3-ary n-cube, digit-split placement (arXiv 2204.12079 hosts)", {1, 10},
        kUsesNone,
        [](const BuildParams& p) {
          KaryLayoutResult r = threeary_cube_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return threeary_cube_layout_stream(p.n, s, g);
        },
        // No leading-term area claim; the exact grid/cylinder/tree host
        // wirelengths pin the placement and edge set instead.
        with_wl(BoundSpec{nullptr, 0.0, 0, nullptr, two_layers,
                          "arXiv 2204.12079: exact grid/cylinder/tree host wirelengths"},
                [](const BuildParams& p) { return threeary_grid_wirelength(p.n); },
                [](const BuildParams& p) { return threeary_cylinder_wirelength(p.n); },
                [](const BuildParams& p) { return threeary_tree_wirelength(p.n); }));
    add("complete2d", "K_m on a near-square grid, area m^4/16 (Lemma 2.1)", {2, 4096},
        kParamMultiplicity,
        [](const BuildParams& p) {
          Complete2DResult r = complete2d_layout(p.n, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return complete2d_layout_stream(p.n, s, p.multiplicity, g);
        },
        BoundSpec{[](const BuildParams& p) {
                    return p.multiplicity * p.multiplicity * complete2d_area(p.n);
                  },
                  12.0, 6, nullptr, two_layers, "Lemma 2.1b: area m^4/16 + o(m^4)"});
    add("complete2d-compact", "K_m with four-sided attachments (Lemma 2.1 node window)",
        {2, 4096}, kParamMultiplicity,
        [](const BuildParams& p) {
          Complete2DResult r = complete2d_compact_layout(p.n, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return complete2d_compact_layout_stream(p.n, s, p.multiplicity, g);
        },
        BoundSpec{[](const BuildParams& p) {
                    return p.multiplicity * p.multiplicity * complete2d_area(p.n);
                  },
                  12.0, 6, nullptr, two_layers, "Lemma 2.1b (extended-grid nodes)"});
    add("complete2d-directed", "directed K_m, both orientations routed, area m^4/4",
        {2, 4096}, kUsesNone,
        [](const BuildParams& p) {
          Complete2DResult r = complete2d_directed_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return complete2d_directed_layout_stream(p.n, s, g);
        },
        BoundSpec{[](const BuildParams& p) { return complete2d_directed_area(p.n); }, 12.0, 6,
                  nullptr, two_layers, "Lemma 2.1b, directed variant: area m^4/4"});
    add("collinear", "collinear K_m, left-edge channel packing (Lemma 2.1)", {2, 4096},
        kParamMultiplicity,
        [](const BuildParams& p) {
          CollinearResult r =
              collinear_complete_layout(p.n, TrackBackend::kLeftEdge, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return collinear_complete_layout_stream(p.n, s, TrackBackend::kLeftEdge,
                                                  p.multiplicity, g);
        },
        BoundSpec{nullptr, 0.0, 0, collinear_tracks, two_layers,
                  "Lemma 2.1a / Theorem 3.5: floor(m^2/4) tracks, strictly optimal"});
    add("collinear-paper", "collinear K_m, the paper's explicit track rule (Lemma 2.1)",
        {2, 4096}, kParamMultiplicity,
        [](const BuildParams& p) {
          CollinearResult r =
              collinear_complete_layout(p.n, TrackBackend::kPaperRule, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return collinear_complete_layout_stream(p.n, s, TrackBackend::kPaperRule,
                                                  p.multiplicity, g);
        },
        BoundSpec{nullptr, 0.0, 0, collinear_tracks, two_layers,
                  "Lemma 2.1a / Theorem 3.5: floor(m^2/4) tracks, strictly optimal"});
    add("baseline-naive", "n-star on one row, a private track per edge (E11 ablation)",
        {2, 10}, kUsesNone,
        [](const BuildParams& p) {
          topology::Graph g = baseline_subject(p.n);
          layout::RoutedLayout routed = naive_collinear_layout(g);
          return BuildResult{std::move(g), std::move(routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g_out) {
          topology::Graph g = baseline_subject(p.n);
          layout::RouteStats stats = naive_collinear_layout_stream(g, s);
          if (g_out) *g_out = std::move(g);
          return stats;
        });
    add("baseline-unordered", "n-star with vertex-id row-major placement (E11 ablation)",
        {2, 10}, kUsesNone,
        [](const BuildParams& p) {
          topology::Graph g = baseline_subject(p.n);
          layout::RoutedLayout routed = unordered_grid_layout(g);
          return BuildResult{std::move(g), std::move(routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g_out) {
          topology::Graph g = baseline_subject(p.n);
          layout::RouteStats stats = unordered_grid_layout_stream(g, s);
          if (g_out) *g_out = std::move(g);
          return stats;
        });
    add("baseline-unbalanced",
        "n-star, hierarchical placement but no bundle halving (E11 ablation)", {2, 10},
        kParamBaseSize,
        [](const BuildParams& p) {
          const int base = std::min(p.base_size, p.n);
          const StarStructure s = star_structure(p.n, base);
          topology::Graph g = baseline_subject(p.n);
          layout::RoutedLayout routed = unbalanced_orientation_layout(g, s.placement);
          return BuildResult{std::move(g), std::move(routed)};
        },
        [](const BuildParams& p, layout::WireSink& sink, topology::Graph* g_out) {
          const int base = std::min(p.base_size, p.n);
          const StarStructure s = star_structure(p.n, base);
          topology::Graph g = baseline_subject(p.n);
          layout::RouteStats stats = unbalanced_orientation_layout_stream(g, s.placement, sink);
          if (g_out) *g_out = std::move(g);
          return stats;
        });

    std::sort(b.begin(), b.end(),
              [](const FnBuilder& x, const FnBuilder& y) { return x.name() < y.name(); });
    return b;
  }();
  return builders;
}

/// Canonical form for family lookup: surrounding whitespace stripped,
/// ASCII-lowercased, '_' folded to '-'.
std::string normalize_family_name(std::string_view raw) {
  std::size_t lo = 0, hi = raw.size();
  while (lo < hi && std::isspace(static_cast<unsigned char>(raw[lo])) != 0) ++lo;
  while (hi > lo && std::isspace(static_cast<unsigned char>(raw[hi - 1])) != 0) --hi;
  std::string out;
  out.reserve(hi - lo);
  for (std::size_t i = lo; i < hi; ++i) {
    char c = static_cast<char>(std::tolower(static_cast<unsigned char>(raw[i])));
    out.push_back(c == '_' ? '-' : c);
  }
  return out;
}

/// The registered name closest to \p normalized (there is always one:
/// the registry is never empty).  Distance and tie-break rules live in
/// suggest.hpp, shared with pass and protocol-method suggestions.
std::string_view nearest_family_name(std::string_view normalized) {
  std::vector<std::string_view> names;
  names.reserve(registry().size());
  for (const FnBuilder& b : registry()) names.push_back(b.name());
  return nearest_name(normalized, names);
}

struct ParamFieldInfo {
  unsigned bit;
  const char* field;  ///< struct member name
  const char* flag;   ///< driver flag spelling
};
constexpr ParamFieldInfo kParamFieldInfo[] = {
    {kParamBaseSize, "base_size", "--base-size"},
    {kParamLayers, "layers", "--layers"},
    {kParamMultiplicity, "multiplicity", "--multiplicity"},
};

}  // namespace

const char* build_error_code_name(BuildErrorCode code) {
  switch (code) {
    case BuildErrorCode::kUnknownFamily: return "unknown-family";
    case BuildErrorCode::kUnknownParam: return "unknown-param";
    case BuildErrorCode::kSizeOutOfRange: return "size-out-of-range";
    case BuildErrorCode::kBudgetExceeded: return "budget-exceeded";
    case BuildErrorCode::kInvalidArgument: return "invalid-argument";
    case BuildErrorCode::kIoError: return "io-error";
  }
  return "invalid-argument";
}

unsigned BuildParams::nondefault_fields() const {
  const BuildParams defaults;
  unsigned bits = 0;
  if (base_size != defaults.base_size) bits |= kParamBaseSize;
  if (layers != defaults.layers) bits |= kParamLayers;
  if (multiplicity != defaults.multiplicity) bits |= kParamMultiplicity;
  return bits;
}

BuildStatus BuildParams::validate(const LayoutBuilder& builder, unsigned explicit_fields) const {
  const auto [lo, hi] = builder.n_range();
  if (n < lo || n > hi) {
    BuildError err;
    err.code = BuildErrorCode::kSizeOutOfRange;
    err.n_lo = lo;
    err.n_hi = hi;
    err.message = "family '" + std::string(builder.name()) + "': n=" + std::to_string(n) +
                  " outside the valid range [" + std::to_string(lo) + ", " + std::to_string(hi) +
                  "]";
    return err;
  }
  const unsigned checked = explicit_fields | nondefault_fields();
  const unsigned stray = checked & ~builder.params_used();
  if (stray != 0) {
    // Report the first offending field; one diagnostic at a time keeps the
    // driver message identical everywhere.
    for (const ParamFieldInfo& f : kParamFieldInfo) {
      if ((stray & f.bit) == 0) continue;
      BuildError err;
      err.code = BuildErrorCode::kUnknownParam;
      err.message = std::string(f.flag) + " (" + f.field + ") does not apply to family '" +
                    std::string(builder.name()) + "'";
      return err;
    }
  }
  return {};
}

layout::RouteStats LayoutBuilder::build_stream_passes(const BuildParams& params,
                                                      const PassList& passes,
                                                      layout::WireSink& sink,
                                                      topology::Graph* graph_out) const {
  STARLAY_REQUIRE(passes.empty(),
                  "builder: family does not support optimization passes");
  return build_stream(params, sink, graph_out);
}

BuildOutcome<BuildResult> LayoutBuilder::try_build(const BuildParams& params) const {
  if (BuildStatus st = params.validate(*this); !st.ok()) return st.error();
  try {
    return build(params);
  } catch (const InvariantError& e) {
    // Params passed validation, so a tripped invariant is a blown resource
    // budget (wire-id widths, coordinate widths, bookkeeping limits).
    BuildError err;
    err.code = BuildErrorCode::kBudgetExceeded;
    err.message = "family '" + std::string(name()) + "': " + e.what();
    return err;
  }
}

BuildOutcome<layout::RouteStats> LayoutBuilder::try_build_stream(const BuildRequest& request,
                                                                 layout::WireSink& sink,
                                                                 topology::Graph* graph_out) const {
  if (BuildStatus st = request.params.validate(*this, request.explicit_fields); !st.ok())
    return st.error();
  if (!request.passes.empty() && !supports_passes()) {
    BuildError err;
    err.code = BuildErrorCode::kUnknownParam;
    err.message = "--passes does not apply to family '" + std::string(name()) +
                  "' (only the star hierarchy machinery threads optimization passes)";
    return err;
  }
  // Attribute the trace to the request it served; the key string is only
  // built while a trace is active.
  if (tel::tracing()) tel::count("request{" + request.canonical_key(*this) + "}", 1);
  try {
    if (request.passes.empty()) return build_stream(request.params, sink, graph_out);
    return build_stream_passes(request.params, request.passes, sink, graph_out);
  } catch (const InvariantError& e) {
    BuildError err;
    err.code = BuildErrorCode::kBudgetExceeded;
    err.message = "family '" + std::string(name()) + "': " + e.what();
    return err;
  }
}

BuildOutcome<layout::RouteStats> LayoutBuilder::try_build_stream(const BuildParams& params,
                                                                 layout::WireSink& sink,
                                                                 topology::Graph* graph_out) const {
  BuildRequest request;
  request.family = std::string(name());
  request.params = params;
  return try_build_stream(request, sink, graph_out);
}

BuildOutcome<layout::RouteStats> LayoutBuilder::try_build_stream_passes(
    const BuildParams& params, const PassList& passes, layout::WireSink& sink,
    topology::Graph* graph_out) const {
  BuildRequest request;
  request.family = std::string(name());
  request.params = params;
  request.passes = passes;
  return try_build_stream(request, sink, graph_out);
}

const LayoutBuilder* find_builder(std::string_view name) {
  for (const FnBuilder& b : registry())
    if (b.name() == name) return &b;
  return nullptr;
}

BuildOutcome<const LayoutBuilder*> try_find_builder(std::string_view name) {
  const std::string canon = normalize_family_name(name);
  if (canon.empty()) {
    BuildError err;
    err.code = BuildErrorCode::kInvalidArgument;
    err.message = "empty family name";
    return err;
  }
  if (const LayoutBuilder* b = find_builder(canon)) return b;
  BuildError err;
  err.code = BuildErrorCode::kUnknownFamily;
  err.suggestion = std::string(nearest_family_name(canon));
  err.message = "unknown family '" + std::string(name) + "'; did you mean '" + err.suggestion +
                "'? (see --list for all families)";
  return err;
}

std::vector<const LayoutBuilder*> all_builders() {
  std::vector<const LayoutBuilder*> out;
  out.reserve(registry().size());
  for (const FnBuilder& b : registry()) out.push_back(&b);
  return out;
}

}  // namespace starlay::core
