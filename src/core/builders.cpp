#include "starlay/core/builder.hpp"

#include <algorithm>
#include <functional>
#include <string>

#include "starlay/core/baseline.hpp"
#include "starlay/core/collinear_complete.hpp"
#include "starlay/core/complete2d.hpp"
#include "starlay/core/hcn_layout.hpp"
#include "starlay/core/hypercube_layout.hpp"
#include "starlay/core/multilayer_star.hpp"
#include "starlay/core/star_layout.hpp"
#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

namespace {

using BuildFn = std::function<BuildResult(const BuildParams&)>;
using StreamFn =
    std::function<layout::RouteStats(const BuildParams&, layout::WireSink&, topology::Graph*)>;

class FnBuilder final : public LayoutBuilder {
 public:
  FnBuilder(std::string name, std::string description, std::pair<int, int> n_range,
            BuildFn build, StreamFn stream)
      : name_(std::move(name)),
        description_(std::move(description)),
        n_range_(n_range),
        build_(std::move(build)),
        stream_(std::move(stream)) {}

  std::string_view name() const override { return name_; }
  std::string_view description() const override { return description_; }
  std::pair<int, int> n_range() const override { return n_range_; }

  BuildResult build(const BuildParams& params) const override {
    check_range(params);
    return build_(params);
  }

  layout::RouteStats build_stream(const BuildParams& params, layout::WireSink& sink,
                                  topology::Graph* graph_out) const override {
    check_range(params);
    return stream_(params, sink, graph_out);
  }

 private:
  void check_range(const BuildParams& params) const {
    STARLAY_REQUIRE(params.n >= n_range_.first && params.n <= n_range_.second,
                    "builder: n outside the family's valid range");
  }

  std::string name_;
  std::string description_;
  std::pair<int, int> n_range_;
  BuildFn build_;
  StreamFn stream_;
};

BuildResult from_star(StarLayoutResult r) { return {std::move(r.graph), std::move(r.routed)}; }
BuildResult from_hcn(HcnLayoutResult r) { return {std::move(r.graph), std::move(r.routed)}; }

/// The baselines need a subject network; the n-star is the repo's standard
/// ablation subject (EXPERIMENTS.md, E11).
topology::Graph baseline_subject(int n) { return topology::star_graph(n); }

const std::vector<FnBuilder>& registry() {
  // Function-local so registration cannot be dropped by the linker and
  // needs no static-init ordering.
  static const std::vector<FnBuilder> builders = [] {
    std::vector<FnBuilder> b;
    const auto add = [&](std::string name, std::string desc, std::pair<int, int> range,
                         BuildFn build, StreamFn stream) {
      b.emplace_back(std::move(name), std::move(desc), range, std::move(build),
                     std::move(stream));
    };

    add("star", "n-star graph, optimal N^2/16 hierarchical layout (Lemma 2.2)", {2, 12},
        [](const BuildParams& p) { return from_star(star_layout(p.n, p.base_size)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return star_layout_stream(p.n, s, p.base_size, g);
        });
    add("star-compact", "n-star with four-sided attachments (Theorem 3.7 node window)",
        {2, 12},
        [](const BuildParams& p) { return from_star(star_layout_compact(p.n, p.base_size)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return star_layout_compact_stream(p.n, s, p.base_size, g);
        });
    add("pancake", "n-pancake graph via the star hierarchy machinery", {2, 12},
        [](const BuildParams& p) {
          return from_star(permutation_layout(PermutationFamily::kPancake, p.n, p.base_size));
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return permutation_layout_stream(PermutationFamily::kPancake, p.n, s, p.base_size, g);
        });
    add("bubble-sort", "n-bubble-sort graph via the star hierarchy machinery", {2, 12},
        [](const BuildParams& p) {
          return from_star(
              permutation_layout(PermutationFamily::kBubbleSort, p.n, p.base_size));
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return permutation_layout_stream(PermutationFamily::kBubbleSort, p.n, s, p.base_size,
                                           g);
        });
    add("transposition", "complete transposition graph (Section 2.4 remark)", {2, 12},
        [](const BuildParams& p) { return from_star(transposition_layout(p.n, p.base_size)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return transposition_layout_stream(p.n, s, p.base_size, g);
        });
    add("multilayer-star", "L-layer X-Y star layout, area ~N^2/(4L^2) (Lemma 2.3)", {2, 12},
        [](const BuildParams& p) {
          MultilayerStarResult r = multilayer_star_layout(p.n, p.layers, p.base_size);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return multilayer_star_layout_stream(p.n, p.layers, s, p.base_size, g);
        });
    add("hcn", "hierarchical cubic network HCN(h, h), N = 2^(2h) (Lemma 2.4)", {1, 8},
        [](const BuildParams& p) { return from_hcn(hcn_layout(p.n)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return hcn_layout_stream(p.n, s, g);
        });
    add("hfn", "hierarchical folded-hypercube network HFN(h, h) (Lemma 2.4)", {1, 8},
        [](const BuildParams& p) { return from_hcn(hfn_layout(p.n)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return hfn_layout_stream(p.n, s, g);
        });
    add("multilayer-hcn", "L-layer X-Y HCN layout (Section 2.4 remark)", {1, 8},
        [](const BuildParams& p) { return from_hcn(multilayer_hcn_layout(p.n, p.layers)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return multilayer_hcn_layout_stream(p.n, p.layers, s, g);
        });
    add("multilayer-hfn", "L-layer X-Y HFN layout (Section 2.4 remark)", {1, 8},
        [](const BuildParams& p) { return from_hcn(multilayer_hfn_layout(p.n, p.layers)); },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return multilayer_hfn_layout_stream(p.n, p.layers, s, g);
        });
    add("hypercube", "d-dimensional hypercube, bit-split placement", {1, 16},
        [](const BuildParams& p) {
          HypercubeLayoutResult r = hypercube_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return hypercube_layout_stream(p.n, s, g);
        });
    add("folded-hypercube", "d-dimensional folded hypercube, bit-split placement", {1, 16},
        [](const BuildParams& p) {
          HypercubeLayoutResult r = folded_hypercube_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return folded_hypercube_layout_stream(p.n, s, g);
        });
    add("complete2d", "K_m on a near-square grid, area m^4/16 (Lemma 2.1)", {2, 4096},
        [](const BuildParams& p) {
          Complete2DResult r = complete2d_layout(p.n, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return complete2d_layout_stream(p.n, s, p.multiplicity, g);
        });
    add("complete2d-compact", "K_m with four-sided attachments (Lemma 2.1 node window)",
        {2, 4096},
        [](const BuildParams& p) {
          Complete2DResult r = complete2d_compact_layout(p.n, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return complete2d_compact_layout_stream(p.n, s, p.multiplicity, g);
        });
    add("complete2d-directed", "directed K_m, both orientations routed, area m^4/4",
        {2, 4096},
        [](const BuildParams& p) {
          Complete2DResult r = complete2d_directed_layout(p.n);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return complete2d_directed_layout_stream(p.n, s, g);
        });
    add("collinear", "collinear K_m, left-edge channel packing (Lemma 2.1)", {2, 4096},
        [](const BuildParams& p) {
          CollinearResult r =
              collinear_complete_layout(p.n, TrackBackend::kLeftEdge, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return collinear_complete_layout_stream(p.n, s, TrackBackend::kLeftEdge,
                                                  p.multiplicity, g);
        });
    add("collinear-paper", "collinear K_m, the paper's explicit track rule (Lemma 2.1)",
        {2, 4096},
        [](const BuildParams& p) {
          CollinearResult r =
              collinear_complete_layout(p.n, TrackBackend::kPaperRule, p.multiplicity);
          return BuildResult{std::move(r.graph), std::move(r.routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g) {
          return collinear_complete_layout_stream(p.n, s, TrackBackend::kPaperRule,
                                                  p.multiplicity, g);
        });
    add("baseline-naive", "n-star on one row, a private track per edge (E11 ablation)",
        {2, 10},
        [](const BuildParams& p) {
          topology::Graph g = baseline_subject(p.n);
          layout::RoutedLayout routed = naive_collinear_layout(g);
          return BuildResult{std::move(g), std::move(routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g_out) {
          topology::Graph g = baseline_subject(p.n);
          layout::RouteStats stats = naive_collinear_layout_stream(g, s);
          if (g_out) *g_out = std::move(g);
          return stats;
        });
    add("baseline-unordered", "n-star with vertex-id row-major placement (E11 ablation)",
        {2, 10},
        [](const BuildParams& p) {
          topology::Graph g = baseline_subject(p.n);
          layout::RoutedLayout routed = unordered_grid_layout(g);
          return BuildResult{std::move(g), std::move(routed)};
        },
        [](const BuildParams& p, layout::WireSink& s, topology::Graph* g_out) {
          topology::Graph g = baseline_subject(p.n);
          layout::RouteStats stats = unordered_grid_layout_stream(g, s);
          if (g_out) *g_out = std::move(g);
          return stats;
        });
    add("baseline-unbalanced",
        "n-star, hierarchical placement but no bundle halving (E11 ablation)", {2, 10},
        [](const BuildParams& p) {
          const int base = std::min(p.base_size, p.n);
          const StarStructure s = star_structure(p.n, base);
          topology::Graph g = baseline_subject(p.n);
          layout::RoutedLayout routed = unbalanced_orientation_layout(g, s.placement);
          return BuildResult{std::move(g), std::move(routed)};
        },
        [](const BuildParams& p, layout::WireSink& sink, topology::Graph* g_out) {
          const int base = std::min(p.base_size, p.n);
          const StarStructure s = star_structure(p.n, base);
          topology::Graph g = baseline_subject(p.n);
          layout::RouteStats stats = unbalanced_orientation_layout_stream(g, s.placement, sink);
          if (g_out) *g_out = std::move(g);
          return stats;
        });

    std::sort(b.begin(), b.end(),
              [](const FnBuilder& x, const FnBuilder& y) { return x.name() < y.name(); });
    return b;
  }();
  return builders;
}

}  // namespace

const LayoutBuilder* find_builder(std::string_view name) {
  for (const FnBuilder& b : registry())
    if (b.name() == name) return &b;
  return nullptr;
}

std::vector<const LayoutBuilder*> all_builders() {
  std::vector<const LayoutBuilder*> out;
  out.reserve(registry().size());
  for (const FnBuilder& b : registry()) out.push_back(&b);
  return out;
}

}  // namespace starlay::core
