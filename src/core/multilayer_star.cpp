#include "starlay/core/multilayer_star.hpp"

#include <algorithm>

#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

std::vector<std::pair<std::int16_t, std::int16_t>> xy_layer_pairs(int L) {
  STARLAY_REQUIRE(L >= 2, "xy_layer_pairs: need at least 2 layers");
  std::vector<std::pair<std::int16_t, std::int16_t>> pairs;
  if (L % 2 == 0) {
    for (int g = 0; g < L / 2; ++g)
      pairs.push_back({static_cast<std::int16_t>(2 * g + 1), static_cast<std::int16_t>(2 * g + 2)});
  } else {
    const int k = L / 2;  // k vertical layers, k+1 horizontal layers
    for (int p = 0; p < 2 * k; ++p) {
      const int h = 2 * ((p + 1) / 2) + 1;
      const int v = 2 * (p / 2 + 1);
      pairs.push_back({static_cast<std::int16_t>(h), static_cast<std::int16_t>(v)});
    }
  }
  return pairs;
}

std::vector<double> xy_pair_weights(int L) {
  STARLAY_REQUIRE(L >= 2, "xy_pair_weights: need at least 2 layers");
  if (L % 2 == 0) return std::vector<double>(static_cast<std::size_t>(L / 2), 2.0 / L);
  const int k = L / 2;
  // Alternating solve: horizontal layers carry 1/(k+1) each, vertical 1/k.
  std::vector<double> w(static_cast<std::size_t>(2 * k));
  double prev = 0.0;
  for (int p = 0; p < 2 * k; ++p) {
    const double target = p % 2 == 0 ? 1.0 / (k + 1) : 1.0 / k;
    // Pair p shares its H (even p) or V (odd p) layer with pair p-1.
    w[static_cast<std::size_t>(p)] = target - (p % 2 == 0 && p > 0 ? prev : 0.0);
    if (p % 2 == 1) w[static_cast<std::size_t>(p)] = target - prev;
    prev = w[static_cast<std::size_t>(p)];
    STARLAY_REQUIRE(prev >= -1e-12, "xy_pair_weights: negative weight");
  }
  return w;
}

std::vector<std::int32_t> assign_pairs(std::int64_t count, const std::vector<double>& weights) {
  STARLAY_REQUIRE(!weights.empty(), "assign_pairs: no pairs");
  // Smooth weighted round-robin.
  std::vector<double> credit(weights.size(), 0.0);
  std::vector<std::int32_t> out(static_cast<std::size_t>(count));
  for (std::int64_t i = 0; i < count; ++i) {
    std::size_t best = 0;
    for (std::size_t p = 0; p < weights.size(); ++p) {
      credit[p] += weights[p];
      if (credit[p] > credit[best]) best = p;
    }
    credit[best] -= 1.0;
    out[static_cast<std::size_t>(i)] = static_cast<std::int32_t>(best);
  }
  return out;
}

void apply_xy_layers(layout::RouteSpec& spec, std::int64_t num_edges, int L) {
  const auto pairs = xy_layer_pairs(L);
  const auto weights = xy_pair_weights(L);
  const auto choice = assign_pairs(num_edges, weights);
  spec.layers.resize(static_cast<std::size_t>(num_edges));
  for (std::int64_t e = 0; e < num_edges; ++e)
    spec.layers[static_cast<std::size_t>(e)] =
        pairs[static_cast<std::size_t>(choice[static_cast<std::size_t>(e)])];
}

MultilayerStarResult multilayer_star_layout(int n, int L, int base_size) {
  STARLAY_REQUIRE(L >= 2, "multilayer_star_layout: need at least 2 layers");
  base_size = std::min(base_size, n);
  StarStructure s = star_structure(n, base_size);
  topology::Graph g = topology::star_graph(n);
  layout::RouteSpec spec = star_route_spec(g, s);
  apply_xy_layers(spec, g.num_edges(), L);
  layout::RoutedLayout routed = layout::route_grid(g, s.placement, spec);
  return {std::move(g), std::move(s), std::move(routed), L};
}

layout::RouteStats multilayer_star_layout_stream(int n, int L, layout::WireSink& sink,
                                                 int base_size, topology::Graph* graph_out) {
  STARLAY_REQUIRE(L >= 2, "multilayer_star_layout_stream: need at least 2 layers");
  base_size = std::min(base_size, n);
  StarStructure s = star_structure(n, base_size);
  topology::Graph g = topology::star_graph(n);
  layout::RouteSpec spec = star_route_spec(g, s);
  apply_xy_layers(spec, g.num_edges(), L);
  std::vector<std::int32_t>().swap(s.paths.flat);
  s.paths.stride = 0;
  g.release_adjacency();
  layout::RouteStats stats = layout::route_grid_stream(g, s.placement, spec, {}, sink);
  if (graph_out) *graph_out = std::move(g);
  return stats;
}

}  // namespace starlay::core
