#include "starlay/core/pass.hpp"

#include <algorithm>
#include <cctype>
#include <string>

#include "starlay/core/suggest.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::core {

namespace {

namespace tel = starlay::support::telemetry;

/// Same normalization the family registry applies: trim, case-fold,
/// '_' == '-'.
std::string normalize_pass_name(std::string_view raw) {
  std::size_t b = 0, e = raw.size();
  while (b < e && std::isspace(static_cast<unsigned char>(raw[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(raw[e - 1]))) --e;
  std::string out;
  out.reserve(e - b);
  for (std::size_t i = b; i < e; ++i) {
    char c = raw[i];
    if (c == '_') c = '-';
    out.push_back(static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

// ---- Structural passes --------------------------------------------------------

class FrontPass final : public LayoutPass {
 public:
  std::string_view name() const override { return "front"; }
  std::string_view description() const override {
    return "family front-end: enumerate, place, derive the route spec";
  }
  void run(PassContext& ctx) const override {
    STARLAY_REQUIRE(ctx.front != nullptr, "pass pipeline: missing front hook");
    ctx.front(ctx);
    STARLAY_REQUIRE(ctx.placement != nullptr,
                    "pass pipeline: front hook left no placement");
  }
};

class RefinePass final : public LayoutPass {
 public:
  std::string_view name() const override { return "refine"; }
  std::string_view description() const override {
    return "iterative placement refiner: KL-seeded swap-based wirelength "
           "energy minimization, kept only when the routed area improves";
  }
  void run(PassContext& ctx) const override {
    tel::ScopedPhase span("refine");
    ctx.metrics.refine =
        bisect::refine_placement(ctx.graph, *ctx.placement, ctx.refine_options);
    ctx.metrics.refined = true;
    // Orientation metadata (RouteSpec) is derived from node rows; the
    // placement may have moved, so the family re-derives it.
    if (ctx.respec) ctx.respec(ctx);
  }
};

class RoutePass final : public LayoutPass {
 public:
  std::string_view name() const override { return "route"; }
  std::string_view description() const override {
    return "grid router planning: classify, channel-select, assign stubs, "
           "pack tracks";
  }
  void run(PassContext& ctx) const override {
    // Shed before the routing span opens, exactly where the monolithic
    // path freed enumeration scaffolding (keeps the span tree and the
    // peak-RSS profile of the identity pipeline unchanged).
    if (ctx.shed) ctx.shed(ctx);
    ctx.routing_span.emplace("routing");
    ctx.route_plan =
        layout::plan_route(ctx.graph, *ctx.placement, ctx.spec, ctx.router_options);
    ctx.metrics.planned_area_before = layout::planned_area(ctx.route_plan);
  }
};

class CompactPass final : public LayoutPass {
 public:
  std::string_view name() const override { return "compact"; }
  std::string_view description() const override {
    return "track compaction: re-pack channel tracks with track-refined "
           "interval keys, keep the best grid extent";
  }
  void run(PassContext& ctx) const override {
    ctx.metrics.compaction =
        layout::compact_route(ctx.route_plan, ctx.compaction_options);
    ctx.metrics.compacted = true;
  }
};

class EmitPass final : public LayoutPass {
 public:
  std::string_view name() const override { return "emit"; }
  std::string_view description() const override {
    return "geometry emission into the pipeline's wire sink";
  }
  void run(PassContext& ctx) const override {
    STARLAY_REQUIRE(ctx.sink != nullptr, "pass pipeline: missing wire sink");
    ctx.metrics.planned_area_after = layout::planned_area(ctx.route_plan);
    ctx.stats = layout::emit_route(ctx.route_plan, ctx.graph, *ctx.sink);
    ctx.routing_span.reset();
  }
};

/// Measures the bounding box a plan's emission would produce — the same
/// box Layout::bounding_box() computes (node rectangles plus every wire
/// point) — without retaining any geometry.  Used by the refine guard to
/// compare candidate plans by their exact emitted area.
class ExtentSink final : public layout::WireSink {
 public:
  void begin(const topology::Graph&, std::vector<layout::Rect>&& nodes) override {
    for (const layout::Rect& r : nodes) bb_.cover(r);
  }
  void emit(const layout::Wire& w) override {
    for (std::uint8_t k = 0; k < w.npts; ++k) bb_.cover(w.pts[k]);
  }
  void emit_bulk(std::int64_t count, std::int64_t grain,
                 const layout::WireFill& fill) override {
    const std::int64_t chunks = support::num_chunks(0, count, grain);
    std::vector<layout::Rect> partial(static_cast<std::size_t>(chunks));
    support::parallel_for(0, count, grain,
                          [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
                            layout::Rect r;
                            layout::Wire w;
                            for (std::int64_t i = lo; i < hi; ++i) {
                              w.npts = 0;
                              fill(i, w);
                              for (std::uint8_t k = 0; k < w.npts; ++k) r.cover(w.pts[k]);
                            }
                            partial[static_cast<std::size_t>(chunk)] = r;
                          });
    for (const layout::Rect& r : partial) bb_.cover(r);
  }
  void end() override {}

  std::int64_t area() const { return bb_.area(); }

 private:
  layout::Rect bb_;
};

const FrontPass kFrontPass;
const RefinePass kRefinePass;
const RoutePass kRoutePass;
const CompactPass kCompactPass;
const EmitPass kEmitPass;

/// The nameable (optimization) passes, sorted by name.
const LayoutPass* const kNameablePasses[] = {&kCompactPass, &kRefinePass};

}  // namespace

PassManager& PassManager::add(const LayoutPass* pass) {
  STARLAY_REQUIRE(pass != nullptr, "PassManager: null pass");
  seq_.push_back(pass);
  return *this;
}

void PassManager::run(PassContext& ctx) const {
  for (const LayoutPass* pass : seq_) pass->run(ctx);
}

const LayoutPass* find_pass(std::string_view name) {
  const std::string norm = normalize_pass_name(name);
  for (const LayoutPass* pass : kNameablePasses)
    if (pass->name() == norm) return pass;
  return nullptr;
}

std::vector<const LayoutPass*> all_passes() {
  return {std::begin(kNameablePasses), std::end(kNameablePasses)};
}

BuildOutcome<PassList> parse_pass_list(std::string_view csv) {
  PassList passes;
  std::size_t pos = 0;
  while (pos <= csv.size()) {
    const std::size_t comma = std::min(csv.find(',', pos), csv.size());
    const std::string entry = normalize_pass_name(csv.substr(pos, comma - pos));
    pos = comma + 1;
    if (entry.empty()) continue;  // tolerate "", "compact,", ",refine"
    const LayoutPass* pass = find_pass(entry);
    if (pass == nullptr) {
      std::vector<std::string_view> names;
      for (const LayoutPass* candidate : kNameablePasses) names.push_back(candidate->name());
      const std::string_view best = nearest_name(entry, names);
      BuildError err;
      err.code = BuildErrorCode::kUnknownParam;
      err.message = "unknown pass '" + entry + "' in --passes; did you mean '" +
                    std::string(best) + "'?";
      err.suggestion = std::string(best);
      return err;
    }
    if (pass == &kCompactPass) passes.compact = true;
    if (pass == &kRefinePass) passes.refine = true;
  }
  return passes;
}

layout::RouteStats run_layout_pipeline(PassContext& ctx, const PassList& passes) {
  if (!passes.refine) {
    PassManager pm;
    pm.add(&kFrontPass);
    pm.add(&kRoutePass);
    if (passes.compact) pm.add(&kCompactPass);
    pm.add(&kEmitPass);
    pm.run(ctx);
    return ctx.stats;
  }

  // Refinement minimizes wirelength energy — a proxy correlated with, but
  // not equal to, the routed-area objective — so the refined placement is a
  // candidate, not a commitment.  Both placements are routed (and
  // compacted, when requested), their exact emitted extents measured, and
  // the refined plan kept only on a strict improvement; otherwise the
  // pipeline falls back to the original placement.  That fallback is what
  // makes the optimized build monotone in area, which starcheck's
  // metamorphic relation pins down.  Both route specs are derived before
  // the route pass runs because the respec hook reads enumeration
  // scaffolding (digit paths) that the shed hook frees.
  kFrontPass.run(ctx);
  const layout::Placement baseline_placement = *ctx.placement;
  layout::RouteSpec baseline_spec = ctx.spec;
  kRefinePass.run(ctx);  // mutates the placement in place, then respecs
  const auto route_and_compact = [&ctx, &passes] {
    kRoutePass.run(ctx);
    if (passes.compact) kCompactPass.run(ctx);
  };
  if (ctx.placement->slot == baseline_placement.slot) {
    // No energy improvement: the refiner restored the original placement,
    // so a single route is both candidates at once.
    route_and_compact();
    kEmitPass.run(ctx);
    return ctx.stats;
  }

  layout::Placement refined_placement = *ctx.placement;
  layout::RouteSpec refined_spec = ctx.spec;
  route_and_compact();
  ExtentSink refined_extent;
  layout::emit_route(ctx.route_plan, ctx.graph, refined_extent);
  layout::RoutePlan refined_plan = std::move(ctx.route_plan);
  const PassMetrics refined_metrics = ctx.metrics;

  *ctx.placement = baseline_placement;
  ctx.spec = std::move(baseline_spec);
  route_and_compact();
  ExtentSink baseline_extent;
  layout::emit_route(ctx.route_plan, ctx.graph, baseline_extent);

  if (refined_extent.area() < baseline_extent.area()) {
    *ctx.placement = std::move(refined_placement);
    ctx.spec = std::move(refined_spec);
    ctx.route_plan = std::move(refined_plan);
    ctx.metrics = refined_metrics;
    ctx.metrics.refine_kept = true;
    tel::count("refine.area_saved", baseline_extent.area() - refined_extent.area());
  }
  kEmitPass.run(ctx);
  return ctx.stats;
}

}  // namespace starlay::core
