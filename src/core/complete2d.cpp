#include "starlay/core/complete2d.hpp"

#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

std::uint8_t complete_orientation(std::int32_t row_u, std::int32_t row_v, std::int32_t copy) {
  bool u_src;
  if (row_u == row_v)
    u_src = true;  // routed in the shared row channel; orientation is moot
  else
    u_src = layout::parity_source_is_first(row_u, row_v);
  if (copy % 2 == 1) u_src = !u_src;  // alternate copies between bundles
  return u_src ? 1 : 0;
}

namespace {

/// Graph, near-square placement, and orientation spec shared by every
/// complete-graph variant.  directed: copy 0 is the u -> v link, copy 1
/// the v -> u link; otherwise the paper's bundle-halving parity rule.
struct CompletePrep {
  topology::Graph graph;
  layout::Placement placement;
  layout::RouteSpec spec;
  starlay::GridFactors factors;
};

CompletePrep complete_prep(int m, int multiplicity, bool directed) {
  topology::Graph g = topology::complete_graph(m, multiplicity);
  const auto f = starlay::grid_factors(m);
  layout::Placement p = layout::grid_placement(m, f.rows, f.cols);
  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    spec.source_is_u[static_cast<std::size_t>(e)] =
        directed ? (ed.label == 0 ? 1 : 0)
                 : complete_orientation(p.row_of(ed.u), p.row_of(ed.v), ed.label);
  }
  return {std::move(g), std::move(p), std::move(spec), f};
}

}  // namespace

Complete2DResult complete2d_layout(int m, int multiplicity) {
  STARLAY_REQUIRE(m >= 2, "complete2d_layout: m must be >= 2");
  CompletePrep pr = complete_prep(m, multiplicity, /*directed=*/false);
  layout::RoutedLayout routed = layout::route_grid(pr.graph, pr.placement, pr.spec);
  return {std::move(pr.graph), std::move(routed), pr.factors.rows, pr.factors.cols};
}

Complete2DResult complete2d_compact_layout(int m, int multiplicity) {
  STARLAY_REQUIRE(m >= 2, "complete2d_compact_layout: m must be >= 2");
  CompletePrep pr = complete_prep(m, multiplicity, /*directed=*/false);
  layout::RouterOptions opt;
  opt.four_sided = true;
  layout::RoutedLayout routed = layout::route_grid(pr.graph, pr.placement, pr.spec, opt);
  return {std::move(pr.graph), std::move(routed), pr.factors.rows, pr.factors.cols};
}

Complete2DResult complete2d_directed_layout(int m) {
  STARLAY_REQUIRE(m >= 2, "complete2d_directed_layout: m must be >= 2");
  CompletePrep pr = complete_prep(m, 2, /*directed=*/true);
  layout::RoutedLayout routed = layout::route_grid(pr.graph, pr.placement, pr.spec);
  return {std::move(pr.graph), std::move(routed), pr.factors.rows, pr.factors.cols};
}

layout::RouteStats complete2d_layout_stream(int m, layout::WireSink& sink, int multiplicity,
                                            topology::Graph* graph_out) {
  STARLAY_REQUIRE(m >= 2, "complete2d_layout_stream: m must be >= 2");
  CompletePrep pr = complete_prep(m, multiplicity, /*directed=*/false);
  pr.graph.release_adjacency();
  layout::RouteStats stats =
      layout::route_grid_stream(pr.graph, pr.placement, pr.spec, {}, sink);
  if (graph_out) *graph_out = std::move(pr.graph);
  return stats;
}

layout::RouteStats complete2d_compact_layout_stream(int m, layout::WireSink& sink,
                                                    int multiplicity,
                                                    topology::Graph* graph_out) {
  STARLAY_REQUIRE(m >= 2, "complete2d_compact_layout_stream: m must be >= 2");
  CompletePrep pr = complete_prep(m, multiplicity, /*directed=*/false);
  pr.graph.release_adjacency();
  layout::RouterOptions opt;
  opt.four_sided = true;
  layout::RouteStats stats =
      layout::route_grid_stream(pr.graph, pr.placement, pr.spec, opt, sink);
  if (graph_out) *graph_out = std::move(pr.graph);
  return stats;
}

layout::RouteStats complete2d_directed_layout_stream(int m, layout::WireSink& sink,
                                                     topology::Graph* graph_out) {
  STARLAY_REQUIRE(m >= 2, "complete2d_directed_layout_stream: m must be >= 2");
  CompletePrep pr = complete_prep(m, 2, /*directed=*/true);
  pr.graph.release_adjacency();
  layout::RouteStats stats =
      layout::route_grid_stream(pr.graph, pr.placement, pr.spec, {}, sink);
  if (graph_out) *graph_out = std::move(pr.graph);
  return stats;
}

}  // namespace starlay::core
