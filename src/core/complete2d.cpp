#include "starlay/core/complete2d.hpp"

#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::core {

std::uint8_t complete_orientation(std::int32_t row_u, std::int32_t row_v, std::int32_t copy) {
  bool u_src;
  if (row_u == row_v)
    u_src = true;  // routed in the shared row channel; orientation is moot
  else
    u_src = layout::parity_source_is_first(row_u, row_v);
  if (copy % 2 == 1) u_src = !u_src;  // alternate copies between bundles
  return u_src ? 1 : 0;
}

Complete2DResult complete2d_layout(int m, int multiplicity) {
  STARLAY_REQUIRE(m >= 2, "complete2d_layout: m must be >= 2");
  topology::Graph g = topology::complete_graph(m, multiplicity);
  const auto f = starlay::grid_factors(m);
  const layout::Placement p = layout::grid_placement(m, f.rows, f.cols);

  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    spec.source_is_u[static_cast<std::size_t>(e)] =
        complete_orientation(p.row_of(ed.u), p.row_of(ed.v), ed.label);
  }
  layout::RoutedLayout routed = layout::route_grid(g, p, spec);
  return {std::move(g), std::move(routed), f.rows, f.cols};
}

Complete2DResult complete2d_compact_layout(int m, int multiplicity) {
  STARLAY_REQUIRE(m >= 2, "complete2d_compact_layout: m must be >= 2");
  topology::Graph g = topology::complete_graph(m, multiplicity);
  const auto f = starlay::grid_factors(m);
  const layout::Placement p = layout::grid_placement(m, f.rows, f.cols);
  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    spec.source_is_u[static_cast<std::size_t>(e)] =
        complete_orientation(p.row_of(ed.u), p.row_of(ed.v), ed.label);
  }
  layout::RouterOptions opt;
  opt.four_sided = true;
  layout::RoutedLayout routed = layout::route_grid(g, p, spec, opt);
  return {std::move(g), std::move(routed), f.rows, f.cols};
}

Complete2DResult complete2d_directed_layout(int m) {
  STARLAY_REQUIRE(m >= 2, "complete2d_directed_layout: m must be >= 2");
  topology::Graph g = topology::complete_graph(m, 2);
  const auto f = starlay::grid_factors(m);
  const layout::Placement p = layout::grid_placement(m, f.rows, f.cols);

  // Copy 0 is the u -> v link, copy 1 the v -> u link.
  layout::RouteSpec spec;
  spec.source_is_u.resize(static_cast<std::size_t>(g.num_edges()));
  for (std::int64_t e = 0; e < g.num_edges(); ++e)
    spec.source_is_u[static_cast<std::size_t>(e)] = g.edge(e).label == 0 ? 1 : 0;
  layout::RoutedLayout routed = layout::route_grid(g, p, spec);
  return {std::move(g), std::move(routed), f.rows, f.cols};
}

}  // namespace starlay::core
