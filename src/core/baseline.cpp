#include "starlay/core/baseline.hpp"

#include <algorithm>

#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"

namespace starlay::core {

layout::RouteStats naive_collinear_layout_stream(const topology::Graph& g,
                                                 layout::WireSink& sink) {
  const std::int32_t m = g.num_vertices();
  STARLAY_REQUIRE(m >= 2, "naive_collinear_layout: need >= 2 vertices");
  const auto w = static_cast<layout::Coord>(std::max(1, g.max_degree()));
  std::vector<layout::Rect> rects(static_cast<std::size_t>(m));
  for (std::int32_t v = 0; v < m; ++v)
    rects[static_cast<std::size_t>(v)] = {v * w, 0, v * w + w - 1, w - 1};

  // Stub offsets: incident edges sorted by the far endpoint (left-bound
  // stubs left of right-bound ones, like the optimized layouts).
  std::vector<std::int32_t> stub(static_cast<std::size_t>(g.num_edges()) * 2, -1);
  for (std::int32_t v = 0; v < m; ++v) {
    auto inc = g.incident_edges(v);
    std::vector<std::int64_t> sorted(inc.begin(), inc.end());
    std::sort(sorted.begin(), sorted.end(), [&](std::int64_t a, std::int64_t b) {
      const auto other = [&](std::int64_t e) {
        return g.edge(e).u == v ? g.edge(e).v : g.edge(e).u;
      };
      if (other(a) != other(b)) return other(a) < other(b);
      return a < b;
    });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const std::int64_t e = sorted[i];
      const std::size_t side = g.edge(e).u == v ? 0 : 1;
      stub[static_cast<std::size_t>(e) * 2 + side] = static_cast<std::int32_t>(i);
    }
  }

  sink.begin(g, std::move(rects));
  sink.emit_bulk(g.num_edges(), 4096, [&](std::int64_t e, layout::Wire& wire) {
    const auto& ed = g.edge(e);
    const layout::Coord y = w + e;  // private track per edge
    const layout::Coord xs = ed.u * w + stub[static_cast<std::size_t>(e) * 2];
    const layout::Coord xd = ed.v * w + stub[static_cast<std::size_t>(e) * 2 + 1];
    wire.edge = e;
    wire.push({xs, w - 1});
    wire.push({xs, y});
    wire.push({xd, y});
    wire.push({xd, w - 1});
  });
  sink.end();
  return {{static_cast<std::int32_t>(g.num_edges())},
          std::vector<std::int32_t>(static_cast<std::size_t>(m), 0),
          w};
}

layout::RoutedLayout naive_collinear_layout(const topology::Graph& g) {
  layout::MaterializingSink sink;
  layout::RouteStats stats = naive_collinear_layout_stream(g, sink);
  return {sink.take_layout(), std::move(stats.row_channel_tracks),
          std::move(stats.col_channel_tracks), stats.node_size};
}

layout::RoutedLayout unordered_grid_layout(const topology::Graph& g) {
  const layout::Placement p = layout::row_major_placement(g.num_vertices());
  return layout::route_grid(g, p);
}

layout::RouteStats unordered_grid_layout_stream(const topology::Graph& g,
                                                layout::WireSink& sink) {
  const layout::Placement p = layout::row_major_placement(g.num_vertices());
  return layout::route_grid_stream(g, p, {}, {}, sink);
}

layout::RoutedLayout unbalanced_orientation_layout(const topology::Graph& g,
                                                   const layout::Placement& p) {
  layout::RouteSpec spec;
  spec.source_is_u.assign(static_cast<std::size_t>(g.num_edges()), 1);
  return layout::route_grid(g, p, spec);
}

layout::RouteStats unbalanced_orientation_layout_stream(const topology::Graph& g,
                                                        const layout::Placement& p,
                                                        layout::WireSink& sink) {
  layout::RouteSpec spec;
  spec.source_is_u.assign(static_cast<std::size_t>(g.num_edges()), 1);
  return layout::route_grid_stream(g, p, spec, {}, sink);
}

}  // namespace starlay::core
