#include "starlay/core/baseline.hpp"

#include <algorithm>

#include "starlay/layout/placement.hpp"
#include "starlay/support/check.hpp"

namespace starlay::core {

layout::RoutedLayout naive_collinear_layout(const topology::Graph& g) {
  const std::int32_t m = g.num_vertices();
  STARLAY_REQUIRE(m >= 2, "naive_collinear_layout: need >= 2 vertices");
  const auto w = static_cast<layout::Coord>(std::max(1, g.max_degree()));
  layout::Layout lay(m);
  for (std::int32_t v = 0; v < m; ++v)
    lay.set_node_rect(v, {v * w, 0, v * w + w - 1, w - 1});

  // Stub offsets: incident edges sorted by the far endpoint (left-bound
  // stubs left of right-bound ones, like the optimized layouts).
  std::vector<std::int32_t> stub(static_cast<std::size_t>(g.num_edges()) * 2, -1);
  for (std::int32_t v = 0; v < m; ++v) {
    auto inc = g.incident_edges(v);
    std::vector<std::int64_t> sorted(inc.begin(), inc.end());
    std::sort(sorted.begin(), sorted.end(), [&](std::int64_t a, std::int64_t b) {
      const auto other = [&](std::int64_t e) {
        return g.edge(e).u == v ? g.edge(e).v : g.edge(e).u;
      };
      if (other(a) != other(b)) return other(a) < other(b);
      return a < b;
    });
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      const std::int64_t e = sorted[i];
      const std::size_t side = g.edge(e).u == v ? 0 : 1;
      stub[static_cast<std::size_t>(e) * 2 + side] = static_cast<std::int32_t>(i);
    }
  }

  for (std::int64_t e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    const layout::Coord y = w + e;  // private track per edge
    const layout::Coord xs = ed.u * w + stub[static_cast<std::size_t>(e) * 2];
    const layout::Coord xd = ed.v * w + stub[static_cast<std::size_t>(e) * 2 + 1];
    layout::Wire wire;
    wire.edge = e;
    wire.push({xs, w - 1});
    wire.push({xs, y});
    wire.push({xd, y});
    wire.push({xd, w - 1});
    lay.add_wire(wire);
  }
  layout::RoutedLayout out{std::move(lay),
                           {static_cast<std::int32_t>(g.num_edges())},
                           std::vector<std::int32_t>(static_cast<std::size_t>(m), 0),
                           w};
  return out;
}

layout::RoutedLayout unordered_grid_layout(const topology::Graph& g) {
  const layout::Placement p = layout::row_major_placement(g.num_vertices());
  return layout::route_grid(g, p);
}

layout::RoutedLayout unbalanced_orientation_layout(const topology::Graph& g,
                                                   const layout::Placement& p) {
  layout::RouteSpec spec;
  spec.source_is_u.assign(static_cast<std::size_t>(g.num_edges()), 1);
  return layout::route_grid(g, p, spec);
}

}  // namespace starlay::core
