#include "starlay/topology/permutation.hpp"

#include <algorithm>
#include <numeric>

#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"

namespace starlay::topology {

Perm identity_perm(int n) {
  STARLAY_REQUIRE(n >= 1 && n <= 20, "identity_perm: n out of range");
  Perm p(static_cast<std::size_t>(n));
  std::iota(p.begin(), p.end(), std::uint8_t{1});
  return p;
}

bool is_perm(const Perm& p) {
  const auto n = p.size();
  std::vector<bool> seen(n + 1, false);
  for (std::uint8_t s : p) {
    if (s < 1 || s > n || seen[s]) return false;
    seen[s] = true;
  }
  return true;
}

std::int64_t perm_rank(const Perm& p) {
  STARLAY_REQUIRE(is_perm(p), "perm_rank: not a permutation of {1..n}");
  const int n = static_cast<int>(p.size());
  std::int64_t rank = 0;
  // O(n^2) Lehmer code; n <= 20 so this is never hot.
  for (int i = 0; i < n; ++i) {
    int smaller = 0;
    for (int j = i + 1; j < n; ++j)
      if (p[static_cast<std::size_t>(j)] < p[static_cast<std::size_t>(i)]) ++smaller;
    rank += smaller * factorial(n - 1 - i);
  }
  return rank;
}

Perm perm_unrank(std::int64_t r, int n) {
  STARLAY_REQUIRE(n >= 1 && n <= 20, "perm_unrank: n out of range");
  STARLAY_REQUIRE(r >= 0 && r < factorial(n), "perm_unrank: rank out of range");
  std::vector<std::uint8_t> pool;
  pool.reserve(static_cast<std::size_t>(n));
  for (int s = 1; s <= n; ++s) pool.push_back(static_cast<std::uint8_t>(s));
  Perm p;
  p.reserve(static_cast<std::size_t>(n));
  for (int i = n - 1; i >= 0; --i) {
    const std::int64_t f = factorial(i);
    const auto idx = static_cast<std::size_t>(r / f);
    r %= f;
    p.push_back(pool[idx]);
    pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return p;
}

Perm swap_first_with(const Perm& p, int i) {
  STARLAY_REQUIRE(i >= 2 && i <= static_cast<int>(p.size()),
                  "swap_first_with: dimension out of range");
  Perm q = p;
  std::swap(q[0], q[static_cast<std::size_t>(i - 1)]);
  return q;
}

Perm reverse_prefix(const Perm& p, int i) {
  STARLAY_REQUIRE(i >= 2 && i <= static_cast<int>(p.size()),
                  "reverse_prefix: dimension out of range");
  Perm q = p;
  std::reverse(q.begin(), q.begin() + i);
  return q;
}

Perm swap_adjacent(const Perm& p, int i) {
  STARLAY_REQUIRE(i >= 1 && i < static_cast<int>(p.size()),
                  "swap_adjacent: position out of range");
  Perm q = p;
  std::swap(q[static_cast<std::size_t>(i - 1)], q[static_cast<std::size_t>(i)]);
  return q;
}

std::int32_t base_block_rank(const Perm& p, int base_size) {
  STARLAY_REQUIRE(base_size >= 1 && base_size <= static_cast<int>(p.size()),
                  "base_block_rank: base_size out of range");
  // Lehmer code of the head relabelled by relative order — identical to
  // reducing to 1..base_size and calling perm_rank, without materializing
  // the reduced permutation.
  std::int64_t rank = 0;
  for (int i = 0; i < base_size; ++i) {
    int smaller = 0;
    for (int j = i + 1; j < base_size; ++j)
      if (p[static_cast<std::size_t>(j)] < p[static_cast<std::size_t>(i)]) ++smaller;
    rank += smaller * factorial(base_size - 1 - i);
  }
  return static_cast<std::int32_t>(rank);
}

StarPathEnumerator::StarPathEnumerator(std::int64_t r, int n, int base_size)
    : n_(n), base_(base_size), rank_(r) {
  STARLAY_REQUIRE(base_size >= 1 && base_size <= n,
                  "StarPathEnumerator: base_size in [1, n]");
  p_ = perm_unrank(r, n);
  digits_.resize(static_cast<std::size_t>(n_ - base_));
  recompute_digits_from(0);
  base_rank_ = base_block_rank(p_, base_);
}

void StarPathEnumerator::recompute_digits_from(int pos) {
  // digit(d) lives at position j = n-1-d; only positions >= max(pos, base_)
  // carry digits.
  for (int j = std::max(pos, base_); j < n_; ++j) {
    const std::uint8_t sym = p_[static_cast<std::size_t>(j)];
    std::int32_t smaller = 0;
    for (int k = 0; k < j; ++k)
      if (p_[static_cast<std::size_t>(k)] < sym) ++smaller;
    digits_[static_cast<std::size_t>(n_ - 1 - j)] = smaller;
  }
}

void StarPathEnumerator::advance() {
  // Manual next_permutation so the pivot position is known: everything
  // before it is untouched, bounding the incremental update.
  int i = n_ - 2;
  while (i >= 0 && p_[static_cast<std::size_t>(i)] >= p_[static_cast<std::size_t>(i + 1)]) --i;
  STARLAY_REQUIRE(i >= 0, "StarPathEnumerator::advance: already at the last rank");
  int j = n_ - 1;
  while (p_[static_cast<std::size_t>(j)] <= p_[static_cast<std::size_t>(i)]) --j;
  std::swap(p_[static_cast<std::size_t>(i)], p_[static_cast<std::size_t>(j)]);
  std::reverse(p_.begin() + i + 1, p_.end());
  ++rank_;
  recompute_digits_from(i);
  if (i < base_) base_rank_ = base_block_rank(p_, base_);
}

std::vector<int> substar_path(const Perm& p, int base_size) {
  STARLAY_REQUIRE(base_size >= 1, "substar_path: base_size must be >= 1");
  const int n = static_cast<int>(p.size());
  std::vector<int> path;
  // Symbols still "available" at the current level, ordered ascending; the
  // block index is the rank of the fixed symbol among them.
  std::vector<std::uint8_t> avail;
  for (int s = 1; s <= n; ++s) avail.push_back(static_cast<std::uint8_t>(s));
  for (int level = n; level > base_size; --level) {
    const std::uint8_t sym = p[static_cast<std::size_t>(level - 1)];
    const auto it = std::lower_bound(avail.begin(), avail.end(), sym);
    path.push_back(static_cast<int>(it - avail.begin()));
    avail.erase(it);
  }
  return path;
}

}  // namespace starlay::topology
