#pragma once
/// \file perm_graph_builder.hpp
/// \brief Shared chunk-parallel driver for permutation-graph builders
/// (star, bubble-sort, transposition).
///
/// Every family enumerates all n! vertices in rank order and, per vertex,
/// ranks each generator's image.  The driver walks each chunk's rank range
/// with std::next_permutation (amortized O(1) per step, no allocations)
/// and hands the family callback the raw permutation plus the factorial
/// table so it can use rank_after_swap.  Chunks collect edges into private
/// buffers that are concatenated serially in chunk order, reproducing the
/// serial r-ascending insertion order bit-for-bit at every thread count.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "starlay/support/math.hpp"
#include "starlay/support/thread_pool.hpp"
#include "starlay/topology/graph.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::topology::detail {

/// Builds the graph on all n! permutations of {1..n}.  For each vertex
/// rank r, \p per_vertex(p, r, fact, add) must call add(q, label) once per
/// generator, where q is the neighbor's rank; edges are kept when r < q,
/// so each undirected edge is added exactly once, labels in emit order.
/// \p gens is the generator count (used only to size chunk buffers).
template <typename PerVertex>
Graph build_permutation_graph(int n, int gens, const PerVertex& per_vertex) {
  const std::int64_t N = starlay::factorial(n);
  std::int64_t fact[21];
  fact[0] = 1;
  for (int k = 1; k <= n; ++k) fact[k] = fact[k - 1] * k;

  constexpr std::int64_t kGrain = 4096;
  const std::int64_t chunks = support::num_chunks(0, N, kGrain);
  std::vector<std::vector<Edge>> buf(static_cast<std::size_t>(chunks));
  support::parallel_for(0, N, kGrain,
                        [&](std::int64_t lo, std::int64_t hi, std::int64_t chunk) {
    std::vector<Edge>& out = buf[static_cast<std::size_t>(chunk)];
    out.reserve(static_cast<std::size_t>((hi - lo) * gens / 2 + gens));
    Perm p = perm_unrank(lo, n);
    for (std::int64_t r = lo; r < hi; ++r) {
      per_vertex(p.data(), r, fact, [&](std::int64_t q, std::int32_t label) {
        if (r < q)
          out.push_back({static_cast<std::int32_t>(r), static_cast<std::int32_t>(q), label});
      });
      if (r + 1 < hi) std::next_permutation(p.begin(), p.end());
    }
  });

  Graph g(static_cast<std::int32_t>(N));
  for (const auto& b : buf)
    for (const Edge& e : b) g.add_edge(e.u, e.v, e.label);
  g.finalize();
  return g;
}

}  // namespace starlay::topology::detail
