#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::topology {

std::int32_t hcn_vertex(int h, std::int32_t cluster, std::int32_t local) {
  const std::int32_t M = std::int32_t{1} << h;
  STARLAY_REQUIRE(cluster >= 0 && cluster < M && local >= 0 && local < M,
                  "hcn_vertex: index out of range");
  return cluster * M + local;
}

std::int32_t hcn_cluster_of(int h, std::int32_t v) { return v >> h; }

std::int32_t hcn_local_of(int h, std::int32_t v) {
  return v & ((std::int32_t{1} << h) - 1);
}

namespace {

/// Shared scaffold: clusters of size 2^h connected pairwise by (c,x)-(x,c).
Graph hierarchical_network(int h, bool folded, bool diameter_links) {
  STARLAY_REQUIRE(h >= 1 && h <= 12, "hcn/hfn: h must be in [1, 12]");
  const std::int32_t M = std::int32_t{1} << h;  // clusters and cluster size
  Graph g(M * M);
  const std::int32_t mask = M - 1;
  for (std::int32_t c = 0; c < M; ++c) {
    // Intra-cluster (folded-)hypercube links.
    for (std::int32_t x = 0; x < M; ++x) {
      for (int b = 0; b < h; ++b) {
        const std::int32_t y = x ^ (std::int32_t{1} << b);
        if (x < y)
          g.add_edge(hcn_vertex(h, c, x), hcn_vertex(h, c, y), kIntraClusterBase + b);
      }
      if (folded) {
        const std::int32_t y = x ^ mask;
        if (x < y)
          g.add_edge(hcn_vertex(h, c, x), hcn_vertex(h, c, y), kFoldedComplementLabel);
      }
    }
    // Inter-cluster links: node (c, x) to node (x, c) for x != c.
    for (std::int32_t x = 0; x < M; ++x) {
      if (x == c) continue;
      if (c < x)  // add once per unordered cluster pair
        g.add_edge(hcn_vertex(h, c, x), hcn_vertex(h, x, c), kInterClusterLabel);
    }
    // Diameter link: (c, c) to (~c, ~c).
    if (diameter_links) {
      const std::int32_t cc = c ^ mask;
      if (c < cc)
        g.add_edge(hcn_vertex(h, c, c), hcn_vertex(h, cc, cc), kDiameterLabel);
    }
  }
  g.finalize();
  return g;
}

}  // namespace

Graph hcn(int h) { return hierarchical_network(h, /*folded=*/false, /*diameter_links=*/true); }

Graph hfn(int h) { return hierarchical_network(h, /*folded=*/true, /*diameter_links=*/false); }

}  // namespace starlay::topology
