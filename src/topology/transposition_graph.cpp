#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

#include "perm_graph_builder.hpp"

namespace starlay::topology {

Graph transposition_graph(int n) {
  STARLAY_REQUIRE(n >= 2 && n <= 10, "transposition_graph: n must be in [2, 10]");
  // One generator per position pair (i, j), i < j, labeled in i-major order.
  return detail::build_permutation_graph(
      n, n * (n - 1) / 2,
      [n](const std::uint8_t* p, std::int64_t r, const std::int64_t* fact,
          const auto& add) {
        std::int32_t label = 0;
        for (int i = 1; i <= n; ++i)
          for (int j = i + 1; j <= n; ++j, ++label)
            add(rank_after_swap(p, n, r, i - 1, j - 1, fact), label);
      });
}

}  // namespace starlay::topology
