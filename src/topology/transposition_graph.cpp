#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::topology {

Graph transposition_graph(int n) {
  STARLAY_REQUIRE(n >= 2 && n <= 10, "transposition_graph: n must be in [2, 10]");
  const std::int64_t N = factorial(n);
  Graph g(static_cast<std::int32_t>(N));
  for (std::int64_t r = 0; r < N; ++r) {
    const Perm p = perm_unrank(r, n);
    std::int32_t label = 0;
    for (int i = 1; i <= n; ++i) {
      for (int j = i + 1; j <= n; ++j, ++label) {
        Perm q = p;
        std::swap(q[static_cast<std::size_t>(i - 1)], q[static_cast<std::size_t>(j - 1)]);
        const std::int64_t s = perm_rank(q);
        if (r < s)
          g.add_edge(static_cast<std::int32_t>(r), static_cast<std::int32_t>(s), label);
      }
    }
  }
  g.finalize();
  return g;
}

}  // namespace starlay::topology
