#include "starlay/topology/graph.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "starlay/support/check.hpp"

namespace starlay::topology {

Graph::Graph(std::int32_t n) : n_(n) {
  STARLAY_REQUIRE(n >= 0, "Graph: vertex count must be non-negative");
}

void Graph::add_edge(std::int32_t u, std::int32_t v, std::int32_t label) {
  STARLAY_REQUIRE(u >= 0 && u < n_ && v >= 0 && v < n_, "Graph::add_edge: vertex out of range");
  STARLAY_REQUIRE(u != v, "Graph::add_edge: self-loops are not allowed");
  if (u > v) std::swap(u, v);
  edges_.push_back({u, v, label});
  finalized_ = false;
  degree_.clear();
}

void Graph::finalize() {
  if (finalized_) return;
  row_.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (const Edge& e : edges_) {
    ++row_[static_cast<std::size_t>(e.u) + 1];
    ++row_[static_cast<std::size_t>(e.v) + 1];
  }
  for (std::size_t i = 1; i < row_.size(); ++i) row_[i] += row_[i - 1];
  adj_.assign(static_cast<std::size_t>(row_.back()), 0);
  adj_edge_.assign(static_cast<std::size_t>(row_.back()), 0);
  std::vector<std::int64_t> cursor(row_.begin(), row_.end() - 1);
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    const Edge& e = edges_[i];
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)])] = e.v;
    adj_edge_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.u)]++)] =
        static_cast<std::int64_t>(i);
    adj_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)])] = e.u;
    adj_edge_[static_cast<std::size_t>(cursor[static_cast<std::size_t>(e.v)]++)] =
        static_cast<std::int64_t>(i);
  }
  finalized_ = true;
}

std::span<const std::int32_t> Graph::neighbors(std::int32_t v) const {
  STARLAY_REQUIRE(finalized_, "Graph: call finalize() before neighbors()");
  STARLAY_REQUIRE(v >= 0 && v < n_, "Graph::neighbors: vertex out of range");
  auto b = static_cast<std::size_t>(row_[static_cast<std::size_t>(v)]);
  auto e = static_cast<std::size_t>(row_[static_cast<std::size_t>(v) + 1]);
  return {adj_.data() + b, e - b};
}

std::span<const std::int64_t> Graph::incident_edges(std::int32_t v) const {
  STARLAY_REQUIRE(finalized_, "Graph: call finalize() before incident_edges()");
  STARLAY_REQUIRE(v >= 0 && v < n_, "Graph::incident_edges: vertex out of range");
  auto b = static_cast<std::size_t>(row_[static_cast<std::size_t>(v)]);
  auto e = static_cast<std::size_t>(row_[static_cast<std::size_t>(v) + 1]);
  return {adj_edge_.data() + b, e - b};
}

std::int32_t Graph::degree(std::int32_t v) const {
  STARLAY_REQUIRE(v >= 0 && v < n_, "Graph::degree: vertex out of range");
  if (!degree_.empty()) return degree_[static_cast<std::size_t>(v)];
  STARLAY_REQUIRE(finalized_, "Graph: call finalize() before degree()");
  return static_cast<std::int32_t>(row_[static_cast<std::size_t>(v) + 1] -
                                   row_[static_cast<std::size_t>(v)]);
}

void Graph::release_adjacency() {
  if (degree_.empty()) {
    degree_.assign(static_cast<std::size_t>(n_), 0);
    for (const Edge& e : edges_) {
      ++degree_[static_cast<std::size_t>(e.u)];
      ++degree_[static_cast<std::size_t>(e.v)];
    }
  }
  std::vector<std::int64_t>().swap(row_);
  std::vector<std::int32_t>().swap(adj_);
  std::vector<std::int64_t>().swap(adj_edge_);
  finalized_ = false;
}

std::int32_t Graph::max_degree() const {
  std::int32_t d = 0;
  for (std::int32_t v = 0; v < n_; ++v) d = std::max(d, degree(v));
  return d;
}

bool Graph::is_regular() const {
  if (n_ == 0) return true;
  const std::int32_t d0 = degree(0);
  for (std::int32_t v = 1; v < n_; ++v)
    if (degree(v) != d0) return false;
  return true;
}

bool Graph::is_simple() const {
  std::set<std::pair<std::int32_t, std::int32_t>> seen;
  for (const Edge& e : edges_)
    if (!seen.insert({e.u, e.v}).second) return false;
  return true;
}

}  // namespace starlay::topology
