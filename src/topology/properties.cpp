#include "starlay/topology/properties.hpp"

#include <algorithm>
#include <queue>

#include "starlay/support/check.hpp"

namespace starlay::topology {

std::vector<std::int32_t> bfs_distances(const Graph& g, std::int32_t src) {
  STARLAY_REQUIRE(src >= 0 && src < g.num_vertices(), "bfs_distances: source out of range");
  std::vector<std::int32_t> dist(static_cast<std::size_t>(g.num_vertices()), -1);
  std::queue<std::int32_t> q;
  dist[static_cast<std::size_t>(src)] = 0;
  q.push(src);
  while (!q.empty()) {
    const std::int32_t v = q.front();
    q.pop();
    for (std::int32_t w : g.neighbors(v)) {
      if (dist[static_cast<std::size_t>(w)] < 0) {
        dist[static_cast<std::size_t>(w)] = dist[static_cast<std::size_t>(v)] + 1;
        q.push(w);
      }
    }
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::int32_t d) { return d < 0; });
}

std::int32_t diameter_from(const Graph& g, std::int32_t src) {
  const auto dist = bfs_distances(g, src);
  std::int32_t ecc = 0;
  for (std::int32_t d : dist) {
    STARLAY_REQUIRE(d >= 0, "diameter_from: graph is disconnected");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

std::int32_t diameter(const Graph& g) {
  std::int32_t diam = 0;
  for (std::int32_t v = 0; v < g.num_vertices(); ++v)
    diam = std::max(diam, diameter_from(g, v));
  return diam;
}

double average_distance_from(const Graph& g, std::int32_t src) {
  STARLAY_REQUIRE(g.num_vertices() > 1, "average_distance_from: need >= 2 vertices");
  const auto dist = bfs_distances(g, src);
  std::int64_t total = 0;
  for (std::int32_t d : dist) {
    STARLAY_REQUIRE(d >= 0, "average_distance_from: graph is disconnected");
    total += d;
  }
  return static_cast<double>(total) / static_cast<double>(g.num_vertices() - 1);
}

std::int64_t cut_size(const Graph& g, const std::vector<std::uint8_t>& side) {
  STARLAY_REQUIRE(static_cast<std::int32_t>(side.size()) == g.num_vertices(),
                  "cut_size: side mask size mismatch");
  std::int64_t cut = 0;
  for (const Edge& e : g.edges())
    if (side[static_cast<std::size_t>(e.u)] != side[static_cast<std::size_t>(e.v)]) ++cut;
  return cut;
}

}  // namespace starlay::topology
