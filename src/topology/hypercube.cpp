#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::topology {

Graph hypercube(int d) {
  STARLAY_REQUIRE(d >= 1 && d <= 24, "hypercube: d must be in [1, 24]");
  const std::int32_t N = std::int32_t{1} << d;
  Graph g(N);
  for (std::int32_t v = 0; v < N; ++v)
    for (int b = 0; b < d; ++b) {
      const std::int32_t w = v ^ (std::int32_t{1} << b);
      if (v < w) g.add_edge(v, w, b);
    }
  g.finalize();
  return g;
}

Graph folded_hypercube(int d) {
  STARLAY_REQUIRE(d >= 1 && d <= 24, "folded_hypercube: d must be in [1, 24]");
  const std::int32_t N = std::int32_t{1} << d;
  Graph g(N);
  const std::int32_t mask = N - 1;
  for (std::int32_t v = 0; v < N; ++v) {
    for (int b = 0; b < d; ++b) {
      const std::int32_t w = v ^ (std::int32_t{1} << b);
      if (v < w) g.add_edge(v, w, b);
    }
    const std::int32_t c = v ^ mask;
    if (v < c) g.add_edge(v, c, kFoldedComplementLabel);
  }
  g.finalize();
  return g;
}

}  // namespace starlay::topology
