#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::topology {

Graph hypercube(int d) {
  STARLAY_REQUIRE(d >= 1 && d <= 24, "hypercube: d must be in [1, 24]");
  const std::int32_t N = std::int32_t{1} << d;
  Graph g(N);
  for (std::int32_t v = 0; v < N; ++v)
    for (int b = 0; b < d; ++b) {
      const std::int32_t w = v ^ (std::int32_t{1} << b);
      if (v < w) g.add_edge(v, w, b);
    }
  g.finalize();
  return g;
}

Graph folded_hypercube(int d) {
  STARLAY_REQUIRE(d >= 1 && d <= 24, "folded_hypercube: d must be in [1, 24]");
  const std::int32_t N = std::int32_t{1} << d;
  Graph g(N);
  const std::int32_t mask = N - 1;
  for (std::int32_t v = 0; v < N; ++v) {
    for (int b = 0; b < d; ++b) {
      const std::int32_t w = v ^ (std::int32_t{1} << b);
      if (v < w) g.add_edge(v, w, b);
    }
    const std::int32_t c = v ^ mask;
    if (v < c) g.add_edge(v, c, kFoldedComplementLabel);
  }
  g.finalize();
  return g;
}

Graph enhanced_hypercube(int d, int k) {
  STARLAY_REQUIRE(d >= 1 && d <= 24, "enhanced_hypercube: d must be in [1, 24]");
  STARLAY_REQUIRE(k >= 1 && k <= d, "enhanced_hypercube: k must be in [1, d]");
  const std::int32_t N = std::int32_t{1} << d;
  // Complement mask of coordinates k .. d: bits k-1 .. d-1.
  const std::int32_t mask = (N - 1) & ~((std::int32_t{1} << (k - 1)) - 1);
  Graph g(N);
  for (std::int32_t v = 0; v < N; ++v) {
    for (int b = 0; b < d; ++b) {
      const std::int32_t w = v ^ (std::int32_t{1} << b);
      if (v < w) g.add_edge(v, w, b);
    }
    const std::int32_t c = v ^ mask;
    if (v < c) g.add_edge(v, c, kEnhancedComplementLabel);
  }
  g.finalize();
  return g;
}

Graph threeary_cube(int n) {
  STARLAY_REQUIRE(n >= 1 && n <= 15, "threeary_cube: n must be in [1, 15]");
  std::int64_t size = 1;
  for (int i = 0; i < n; ++i) size *= 3;
  const std::int32_t N = static_cast<std::int32_t>(size);
  Graph g(N);
  // Each directed digit increment (mod 3) names one undirected line edge
  // exactly once: the 3-cycle {x, x+1, x+2} is produced by the increments
  // at x, x+1, and x+2.
  for (std::int32_t v = 0; v < N; ++v) {
    std::int32_t weight = 1;  // 3^dim
    std::int32_t rest = v;
    for (int dim = 0; dim < n; ++dim) {
      const std::int32_t digit = rest % 3;
      const std::int32_t w = v + (digit == 2 ? -2 * weight : weight);
      g.add_edge(std::min(v, w), std::max(v, w), dim);
      weight *= 3;
      rest /= 3;
    }
  }
  g.finalize();
  return g;
}

}  // namespace starlay::topology
