#pragma once
/// \file networks.hpp
/// \brief Builders for every interconnection network studied in the paper.
///
/// Edge labels:
///  * star / pancake / bubble-sort / transposition graphs: the generator
///    dimension (star: i in [2, n] swaps positions 1 and i);
///  * hypercube / folded hypercube / enhanced hypercube: the flipped bit
///    index, kFoldedComplementLabel for the complement (folded) links, and
///    kEnhancedComplementLabel for the partial-complement (enhanced) links;
///  * 3-ary n-cube: the dimension whose digit changes (both the two
///    adjacent links and the wrap link of a dimension line share it);
///  * complete graph: the copy index in [0, multiplicity);
///  * HCN / HFN: kIntraClusterBase + bit for intra-cluster hypercube links,
///    kInterClusterLabel for inter-cluster links, kDiameterLabel for the
///    HCN diameter links.

#include <cstdint>

#include "starlay/topology/graph.hpp"

namespace starlay::topology {

inline constexpr std::int32_t kFoldedComplementLabel = 1000;
inline constexpr std::int32_t kEnhancedComplementLabel = 1500;
inline constexpr std::int32_t kIntraClusterBase = 0;
inline constexpr std::int32_t kInterClusterLabel = 2000;
inline constexpr std::int32_t kDiameterLabel = 3000;

/// n-dimensional star graph S_n: n! vertices (permutation ranks), degree
/// n-1; dimension-i edges swap symbol positions 1 and i (2 <= i <= n).
Graph star_graph(int n);

/// n-dimensional pancake graph: n! vertices, prefix-reversal generators.
Graph pancake_graph(int n);

/// n-dimensional bubble-sort graph: n! vertices, adjacent transpositions.
Graph bubble_sort_graph(int n);

/// n-dimensional (complete) transposition graph: n! vertices, one generator
/// per unordered position pair; degree n(n-1)/2.
Graph transposition_graph(int n);

/// d-dimensional binary hypercube Q_d: 2^d vertices.
Graph hypercube(int d);

/// d-dimensional folded hypercube FQ_d: Q_d plus complement edges.
Graph folded_hypercube(int d);

/// Enhanced hypercube Q(d, k) (Tzeng & Wei): Q_d plus one extra link per
/// vertex complementing bits k-1 .. d-1 (1-indexed coordinates k .. d).
/// Q(d, 1) is the folded hypercube; Q(d, d) duplicates dimension d-1.
Graph enhanced_hypercube(int d, int k);

/// 3-ary n-cube Q(3, n): 3^n vertices (base-3 digit strings), each
/// dimension a 3-cycle over the digit — per dimension line, the two
/// adjacent links plus the wrap link, so degree 2n and n * 3^n edges.
Graph threeary_cube(int n);

/// Complete graph K_m with \p multiplicity parallel edges per vertex pair.
Graph complete_graph(int m, int multiplicity = 1);

/// Hierarchical cubic network with 2^(2h) nodes: 2^h clusters, each a Q_h;
/// inter-cluster link (c,x)-(x,c) for c != x; diameter link (c,c)-(~c,~c).
Graph hcn(int h);

/// Hierarchical folded-hypercube network with 2^(2h) nodes: 2^h clusters,
/// each an FQ_h; inter-cluster link (c,x)-(x,c) for c != x; no diameter
/// links (node (c,c) has no inter-cluster link).
Graph hfn(int h);

/// Vertex id of HCN/HFN node (cluster, local) with cluster size 2^h.
std::int32_t hcn_vertex(int h, std::int32_t cluster, std::int32_t local);

/// Cluster index of an HCN/HFN vertex.
std::int32_t hcn_cluster_of(int h, std::int32_t v);

/// Local (within-cluster) index of an HCN/HFN vertex.
std::int32_t hcn_local_of(int h, std::int32_t v);

}  // namespace starlay::topology
