#pragma once
/// \file graph.hpp
/// \brief Compact undirected (multi)graph used by every subsystem.
///
/// Vertices are dense 0-based int32 ids.  Edges carry an int32 label whose
/// meaning is builder-defined (star-graph dimension, hypercube bit index,
/// HCN link class, ...).  Parallel edges are allowed — the star/HCN layouts
/// route (n-2)! parallel links between supernodes, and the complete-graph
/// layout of Lemma 2.1 is parameterized on edge multiplicity.

#include <cstdint>
#include <span>
#include <vector>

namespace starlay::topology {

/// An undirected edge; by convention u <= v after normalization.
struct Edge {
  std::int32_t u;
  std::int32_t v;
  std::int32_t label;
};

/// Undirected multigraph with CSR adjacency built on finalize().
class Graph {
 public:
  /// Creates a graph with \p n isolated vertices.
  explicit Graph(std::int32_t n);

  /// Adds an undirected edge {u, v} with an optional label.
  /// Self-loops are rejected; parallel edges are allowed.
  void add_edge(std::int32_t u, std::int32_t v, std::int32_t label = 0);

  /// Builds the CSR adjacency.  Must be called before neighbors()/degree().
  /// Safe to call repeatedly; rebuilds only after new edges were added.
  void finalize();

  std::int32_t num_vertices() const { return n_; }
  std::int64_t num_edges() const { return static_cast<std::int64_t>(edges_.size()); }
  std::span<const Edge> edges() const { return edges_; }
  const Edge& edge(std::int64_t i) const { return edges_[static_cast<std::size_t>(i)]; }

  /// Neighbor vertex ids of \p v (with multiplicity). Requires finalize().
  std::span<const std::int32_t> neighbors(std::int32_t v) const;

  /// Indices into edges() of the edges incident to \p v. Requires finalize().
  std::span<const std::int64_t> incident_edges(std::int32_t v) const;

  /// Degree counting multiplicity. Requires finalize() or a degree cache
  /// left behind by release_adjacency().
  std::int32_t degree(std::int32_t v) const;

  /// Maximum degree over all vertices. Requires finalize() or the
  /// release_adjacency() degree cache.
  std::int32_t max_degree() const;

  /// True when every vertex has the same degree. Requires finalize().
  bool is_regular() const;

  /// True when the graph has no parallel edges.
  bool is_simple() const;

  /// Frees the CSR adjacency (~20 bytes per edge endpoint) while keeping a
  /// per-vertex degree cache computed from the edge list, so
  /// degree()/max_degree() — all the streaming pipeline needs after
  /// routing — keep working.  neighbors() and incident_edges() require a
  /// new finalize() afterwards.  Works whether or not the graph is
  /// finalized; idempotent.
  void release_adjacency();

 private:
  std::int32_t n_;
  std::vector<Edge> edges_;
  bool finalized_ = false;
  std::vector<std::int64_t> row_;         // CSR offsets, size n_ + 1
  std::vector<std::int32_t> adj_;         // neighbor ids
  std::vector<std::int64_t> adj_edge_;    // edge index parallel to adj_
  std::vector<std::int32_t> degree_;      // release_adjacency() cache
};

}  // namespace starlay::topology
