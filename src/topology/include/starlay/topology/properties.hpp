#pragma once
/// \file properties.hpp
/// \brief Structural metrics for networks (diameter, distance, connectivity).
///
/// Used by tests to cross-check the builders against published values (e.g.
/// the n-star's diameter is floor(3(n-1)/2)) and by the comm subsystem for
/// routing and lower bounds.

#include <cstdint>
#include <vector>

#include "starlay/topology/graph.hpp"

namespace starlay::topology {

/// BFS hop distances from \p src; unreachable vertices get -1.
std::vector<std::int32_t> bfs_distances(const Graph& g, std::int32_t src);

/// True when the graph is connected (or empty).
bool is_connected(const Graph& g);

/// Exact diameter via all-pairs BFS — O(V * E), intended for small graphs.
/// For vertex-transitive graphs, prefer diameter_from(g, 0).
std::int32_t diameter(const Graph& g);

/// Eccentricity of \p src; equals the diameter for vertex-transitive graphs.
std::int32_t diameter_from(const Graph& g, std::int32_t src);

/// Mean hop distance from \p src to all other vertices.
double average_distance_from(const Graph& g, std::int32_t src);

/// Number of edges with exactly one endpoint in \p side (a 0/1 mask).
std::int64_t cut_size(const Graph& g, const std::vector<std::uint8_t>& side);

}  // namespace starlay::topology
