#pragma once
/// \file permutation.hpp
/// \brief Permutations over {1..n} with factoradic ranking.
///
/// Star-graph (and pancake / bubble-sort) vertices are permutations; the
/// graph builders use rank/unrank to map them to dense vertex ids.  The
/// layout recursion additionally needs the "substar path" of a vertex — the
/// sequence of symbols at positions n, n-1, ..., identifying which nested
/// substar block the vertex belongs to at each hierarchy level.

#include <cstdint>
#include <vector>

namespace starlay::topology {

/// A permutation of {1, 2, ..., n}; perm[i] is the symbol at position i+1.
using Perm = std::vector<std::uint8_t>;

/// Identity permutation of size n.
Perm identity_perm(int n);

/// Lexicographic rank of \p p among all n! permutations of {1..n}.
std::int64_t perm_rank(const Perm& p);

/// Inverse of perm_rank: the rank-\p r permutation of {1..n}.
Perm perm_unrank(std::int64_t r, int n);

/// True when \p p is a permutation of {1..n} for n = p.size().
bool is_perm(const Perm& p);

/// Swaps positions 1 and i (1-based), i.e. applies the star-graph
/// dimension-i generator.  Requires 2 <= i <= p.size().
Perm swap_first_with(const Perm& p, int i);

/// Reverses the prefix of length i (pancake dimension-i generator).
Perm reverse_prefix(const Perm& p, int i);

/// Swaps adjacent positions i and i+1 (bubble-sort generator), 1-based.
Perm swap_adjacent(const Perm& p, int i);

/// Lexicographic rank of \p p after swapping 0-based positions \p i < \p j,
/// given that rank(p) == \p r.  A transposition perturbs only the Lehmer
/// digits at positions i..j, each by a count obtainable from one scan of
/// the suffix, so this is O(n) — versus O(n^2) plus two allocations for
/// materializing the swapped permutation and re-ranking it.  \p fact must
/// hold 0!..(n-1)! at least.  The permutation-graph builders call this once
/// per generator per vertex; at star dimension 9 that is ~12M calls.
inline std::int64_t rank_after_swap(const std::uint8_t* p, int n, std::int64_t r, int i,
                                    int j, const std::int64_t* fact) {
  const int x = p[i], y = p[j];
  // Lehmer digit i: the value at i becomes y; the suffix loses y, gains x.
  std::int64_t ci_x = 0, ci_y = 0;
  for (int k = i + 1; k < n; ++k) {
    ci_x += p[k] < x;
    ci_y += p[k] < y;
  }
  std::int64_t delta = (ci_y + (x < y ? 1 : 0) - ci_x) * fact[n - 1 - i];
  // Digits strictly between: position j's value changes from y to x.
  for (int k = i + 1; k < j; ++k)
    delta += (static_cast<std::int64_t>(x < p[k]) - (y < p[k])) * fact[n - 1 - k];
  // Digit j: the value there becomes x; the suffix beyond j is untouched.
  std::int64_t cj_x = 0, cj_y = 0;
  for (int k = j + 1; k < n; ++k) {
    cj_x += p[k] < x;
    cj_y += p[k] < y;
  }
  delta += (cj_x - cj_y) * fact[n - 1 - j];
  return r + delta;
}

/// Substar path of \p p: element 0 is the symbol at the last position
/// (which level-n block p belongs to), element 1 the symbol at position
/// n-1 among the remaining ones, etc., down to blocks of size
/// `base_size`.  Each element is a 0-based index among the symbols still
/// present at that level, so it can index block grids directly.
std::vector<int> substar_path(const Perm& p, int base_size);

/// Rank of the base block's reduced permutation: the first \p base_size
/// symbols of \p p relabelled to 1..base_size preserving relative order.
std::int32_t base_block_rank(const Perm& p, int base_size);

/// Incremental enumerator of permutations in lexicographic (rank) order
/// that maintains the substar path digits and base-block rank under each
/// advance, instead of re-deriving them from scratch per rank.
///
/// The key identities making the updates cheap:
///  * digit(d) — the substar-path digit for level n-d (the symbol at
///    0-based position j = n-1-d) equals |{k < j : p[k] < p[j]}|, a pure
///    function of the prefix p[0..j];
///  * a lexicographic next-permutation step rewrites only the suffix from
///    its pivot position onward, so only digits at positions >= pivot (and
///    the base rank only when pivot < base_size) need recomputation.
/// The pivot sits at position n-2 half the time, giving O(n) expected work
/// per step versus O(n^2) plus allocations for perm_unrank + substar_path.
class StarPathEnumerator {
 public:
  /// Positions the enumerator at rank \p r of the n! permutations.
  /// Requires 1 <= base_size <= n and 0 <= r < n!.
  StarPathEnumerator(std::int64_t r, int n, int base_size);

  const Perm& perm() const { return p_; }
  std::int64_t rank() const { return rank_; }
  int num_digits() const { return n_ - base_; }

  /// Substar-path digit for depth \p d (0 = outermost level n), matching
  /// substar_path(perm(), base_size)[d].  Requires 0 <= d < num_digits().
  std::int32_t digit(int d) const { return digits_[static_cast<std::size_t>(d)]; }

  /// Matching base_block_rank(perm(), base_size).
  std::int32_t base_rank() const { return base_rank_; }

  /// Steps to the rank+1 permutation.  Requires rank() + 1 < n!.
  void advance();

 private:
  void recompute_digits_from(int pos);

  int n_;
  int base_;
  std::int64_t rank_;
  Perm p_;
  std::vector<std::int32_t> digits_;  ///< by depth d, position n-1-d
  std::int32_t base_rank_ = 0;
};

}  // namespace starlay::topology
