#pragma once
/// \file permutation.hpp
/// \brief Permutations over {1..n} with factoradic ranking.
///
/// Star-graph (and pancake / bubble-sort) vertices are permutations; the
/// graph builders use rank/unrank to map them to dense vertex ids.  The
/// layout recursion additionally needs the "substar path" of a vertex — the
/// sequence of symbols at positions n, n-1, ..., identifying which nested
/// substar block the vertex belongs to at each hierarchy level.

#include <cstdint>
#include <vector>

namespace starlay::topology {

/// A permutation of {1, 2, ..., n}; perm[i] is the symbol at position i+1.
using Perm = std::vector<std::uint8_t>;

/// Identity permutation of size n.
Perm identity_perm(int n);

/// Lexicographic rank of \p p among all n! permutations of {1..n}.
std::int64_t perm_rank(const Perm& p);

/// Inverse of perm_rank: the rank-\p r permutation of {1..n}.
Perm perm_unrank(std::int64_t r, int n);

/// True when \p p is a permutation of {1..n} for n = p.size().
bool is_perm(const Perm& p);

/// Swaps positions 1 and i (1-based), i.e. applies the star-graph
/// dimension-i generator.  Requires 2 <= i <= p.size().
Perm swap_first_with(const Perm& p, int i);

/// Reverses the prefix of length i (pancake dimension-i generator).
Perm reverse_prefix(const Perm& p, int i);

/// Swaps adjacent positions i and i+1 (bubble-sort generator), 1-based.
Perm swap_adjacent(const Perm& p, int i);

/// Substar path of \p p: element 0 is the symbol at the last position
/// (which level-n block p belongs to), element 1 the symbol at position
/// n-1 among the remaining ones, etc., down to blocks of size
/// `base_size`.  Each element is a 0-based index among the symbols still
/// present at that level, so it can index block grids directly.
std::vector<int> substar_path(const Perm& p, int base_size);

}  // namespace starlay::topology
