#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

#include "perm_graph_builder.hpp"

namespace starlay::topology {

Graph star_graph(int n) {
  STARLAY_REQUIRE(n >= 2 && n <= 12, "star_graph: n must be in [2, 12]");
  // Generator i swaps positions 1 and i (1-based): rank each neighbor by
  // Lehmer delta instead of materializing and re-ranking the permutation.
  return detail::build_permutation_graph(
      n, n - 1,
      [n](const std::uint8_t* p, std::int64_t r, const std::int64_t* fact,
          const auto& add) {
        for (int i = 2; i <= n; ++i) add(rank_after_swap(p, n, r, 0, i - 1, fact), i);
      });
}

}  // namespace starlay::topology
