#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::topology {

Graph star_graph(int n) {
  STARLAY_REQUIRE(n >= 2 && n <= 12, "star_graph: n must be in [2, 12]");
  const std::int64_t N = factorial(n);
  Graph g(static_cast<std::int32_t>(N));
  for (std::int64_t r = 0; r < N; ++r) {
    const Perm p = perm_unrank(r, n);
    for (int i = 2; i <= n; ++i) {
      const std::int64_t q = perm_rank(swap_first_with(p, i));
      if (r < q)  // add each undirected edge once
        g.add_edge(static_cast<std::int32_t>(r), static_cast<std::int32_t>(q), i);
    }
  }
  g.finalize();
  return g;
}

}  // namespace starlay::topology
