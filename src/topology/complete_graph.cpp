#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"

namespace starlay::topology {

Graph complete_graph(int m, int multiplicity) {
  STARLAY_REQUIRE(m >= 1, "complete_graph: m must be positive");
  STARLAY_REQUIRE(multiplicity >= 1, "complete_graph: multiplicity must be positive");
  Graph g(m);
  for (std::int32_t u = 0; u < m; ++u)
    for (std::int32_t v = u + 1; v < m; ++v)
      for (std::int32_t c = 0; c < multiplicity; ++c) g.add_edge(u, v, c);
  g.finalize();
  return g;
}

}  // namespace starlay::topology
