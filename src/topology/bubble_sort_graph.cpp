#include "starlay/support/check.hpp"
#include "starlay/support/math.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

namespace starlay::topology {

Graph bubble_sort_graph(int n) {
  STARLAY_REQUIRE(n >= 2 && n <= 12, "bubble_sort_graph: n must be in [2, 12]");
  const std::int64_t N = factorial(n);
  Graph g(static_cast<std::int32_t>(N));
  for (std::int64_t r = 0; r < N; ++r) {
    const Perm p = perm_unrank(r, n);
    for (int i = 1; i < n; ++i) {
      const std::int64_t q = perm_rank(swap_adjacent(p, i));
      if (r < q)
        g.add_edge(static_cast<std::int32_t>(r), static_cast<std::int32_t>(q), i);
    }
  }
  g.finalize();
  return g;
}

}  // namespace starlay::topology
