#include "starlay/support/check.hpp"
#include "starlay/topology/networks.hpp"
#include "starlay/topology/permutation.hpp"

#include "perm_graph_builder.hpp"

namespace starlay::topology {

Graph bubble_sort_graph(int n) {
  STARLAY_REQUIRE(n >= 2 && n <= 12, "bubble_sort_graph: n must be in [2, 12]");
  // Generator i swaps adjacent positions i and i+1 (1-based).
  return detail::build_permutation_graph(
      n, n - 1,
      [n](const std::uint8_t* p, std::int64_t r, const std::int64_t* fact,
          const auto& add) {
        for (int i = 1; i < n; ++i) add(rank_after_swap(p, n, r, i - 1, i, fact), i);
      });
}

}  // namespace starlay::topology
