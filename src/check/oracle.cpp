#include "starlay/check/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string>

namespace starlay::check {

namespace {

using layout::Coord;
using layout::Layout;
using layout::Point;
using layout::Rect;
using layout::WireRef;

/// Oracle-side oriented segment, extracted directly from the point list
/// (deliberately NOT via Layout::segments(), which is production code).
struct OSeg {
  std::int16_t layer;
  bool horizontal;
  Coord line;     ///< y for horizontal, x for vertical
  Coord lo, hi;   ///< closed span
  std::int64_t wire;
};

std::string point_str(Point p) {
  return "(" + std::to_string(p.x) + ", " + std::to_string(p.y) + ")";
}

bool on_boundary(const Rect& r, Point p) {
  return !r.empty() && r.contains(p) && !r.strictly_contains(p);
}

/// Extracts every non-degenerate segment of every wire, checking
/// rectilinearity on the way (a diagonal step is reported and skipped).
std::vector<OSeg> extract_segments(const Layout& lay, OracleReport& rep, int max_v) {
  std::vector<OSeg> segs;
  for (const WireRef w : lay.wires()) {
    for (int i = 1; i < w.npts(); ++i) {
      const Point a = w.pt(i - 1);
      const Point b = w.pt(i);
      if (a == b) continue;
      if (a.x != b.x && a.y != b.y) {
        rep.fail("wire " + std::to_string(w.index()) + ": diagonal step " + point_str(a) +
                     " -> " + point_str(b),
                 max_v);
        continue;
      }
      if (a.y == b.y)
        segs.push_back({w.h_layer(), true, a.y, std::min(a.x, b.x), std::max(a.x, b.x),
                        w.index()});
      else
        segs.push_back({w.v_layer(), false, a.x, std::min(a.y, b.y), std::max(a.y, b.y),
                        w.index()});
    }
  }
  return segs;
}

/// Closed intersection of a segment with a rectangle: returns false when
/// empty, else [*lo, *hi] along the segment's axis.
bool seg_rect_intersection(const OSeg& s, const Rect& r, Coord* lo, Coord* hi) {
  if (r.empty()) return false;
  if (s.horizontal) {
    if (s.line < r.y0 || s.line > r.y1) return false;
    *lo = std::max(s.lo, r.x0);
    *hi = std::min(s.hi, r.x1);
  } else {
    if (s.line < r.x0 || s.line > r.x1) return false;
    *lo = std::max(s.lo, r.y0);
    *hi = std::min(s.hi, r.y1);
  }
  return *lo <= *hi;
}

Point seg_point(const OSeg& s, Coord along) {
  return s.horizontal ? Point{along, s.line} : Point{s.line, along};
}

std::int64_t polyline_length(const WireRef& w) {
  std::int64_t len = 0;
  for (int i = 1; i < w.npts(); ++i) {
    const Point a = w.pt(i - 1);
    const Point b = w.pt(i);
    len += std::abs(static_cast<std::int64_t>(b.x) - a.x) +
           std::abs(static_cast<std::int64_t>(b.y) - a.y);
  }
  return len;
}

/// Complete 3-ary tree distance between vertex ids: climb both toward the
/// root (id/3) until they meet; every climb step costs 1 on each side.
std::int64_t tree3_distance(std::int32_t u, std::int32_t v) {
  std::int64_t steps = 0;
  while (u != v) {
    u /= 3;
    v /= 3;
    ++steps;
  }
  return 2 * steps;
}

/// Rank of \p value in the sorted distinct list \p lines.
std::int64_t line_rank(const std::vector<std::int64_t>& lines, std::int64_t value) {
  return std::lower_bound(lines.begin(), lines.end(), value) - lines.begin();
}

}  // namespace

MeasuredBounds measure_bounds(const core::LayoutBuilder& builder,
                              const core::BuildParams& params,
                              const core::BuildResult& built) {
  MeasuredBounds m;
  const Layout& lay = built.routed.layout;
  m.area = lay.area();
  m.num_layers = lay.num_layers();
  // Distinct horizontal grid lines carrying wire segments — the collinear
  // model's track count, recomputed from raw geometry.
  std::vector<Coord> lines;
  for (const WireRef w : lay.wires())
    for (int i = 1; i < w.npts(); ++i) {
      const Point a = w.pt(i - 1);
      const Point b = w.pt(i);
      if (a.y == b.y && a.x != b.x) lines.push_back(a.y);
    }
  std::sort(lines.begin(), lines.end());
  m.distinct_tracks =
      std::unique(lines.begin(), lines.end()) - lines.begin();
  if (const core::BoundSpec* spec = builder.bound_spec())
    if (spec->area_leading) m.area_leading = spec->area_leading(params);

  // Serial wirelength recompute (independent witness for the parallel
  // production reductions).
  for (const WireRef w : lay.wires()) {
    const std::int64_t len = polyline_length(w);
    m.total_wire_length += len;
    m.max_wire_length = std::max(m.max_wire_length, len);
  }

  // Host-embedding wirelengths: recover the logical lattice by ranking the
  // distinct node-center lines (2x the center keeps everything integral),
  // then sum host distances over the subject edges.
  const topology::Graph& g = built.graph;
  const std::int32_t V = g.num_vertices();
  std::vector<std::int64_t> cx(static_cast<std::size_t>(V));
  std::vector<std::int64_t> cy(static_cast<std::size_t>(V));
  bool lattice_ok = V > 0;
  for (std::int32_t v = 0; v < V && lattice_ok; ++v) {
    const Rect& r = lay.node_rect(v);
    if (r.empty()) {
      lattice_ok = false;
      break;
    }
    cx[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(r.x0) + r.x1;
    cy[static_cast<std::size_t>(v)] = static_cast<std::int64_t>(r.y0) + r.y1;
  }
  if (lattice_ok) {
    std::vector<std::int64_t> xs = cx;
    std::vector<std::int64_t> ys = cy;
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    std::sort(ys.begin(), ys.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
    const std::int64_t n_cols = static_cast<std::int64_t>(xs.size());
    const std::int64_t n_rows = static_cast<std::int64_t>(ys.size());
    // The cylinder host wraps the axis with fewer distinct lines; a tie
    // wraps y (the builder.hpp convention).
    const bool wrap_y = n_rows <= n_cols;
    const std::int64_t wrap_len = wrap_y ? n_rows : n_cols;
    m.wl_grid_host = 0;
    m.wl_cylinder_host = 0;
    m.wl_tree_host = 0;
    for (std::int64_t e = 0; e < g.num_edges(); ++e) {
      const topology::Edge& edge = g.edge(e);
      const std::int64_t dc = std::abs(line_rank(xs, cx[static_cast<std::size_t>(edge.u)]) -
                                       line_rank(xs, cx[static_cast<std::size_t>(edge.v)]));
      const std::int64_t dr = std::abs(line_rank(ys, cy[static_cast<std::size_t>(edge.u)]) -
                                       line_rank(ys, cy[static_cast<std::size_t>(edge.v)]));
      m.wl_grid_host += dc + dr;
      const std::int64_t wrapped = wrap_y ? dr : dc;
      m.wl_cylinder_host += (wrap_y ? dc : dr) + std::min(wrapped, wrap_len - wrapped);
      m.wl_tree_host += tree3_distance(edge.u, edge.v);
    }
  }
  return m;
}

OracleReport run_oracle(const core::LayoutBuilder& builder, const core::BuildParams& params,
                        const core::BuildResult& built, const OracleOptions& opt) {
  OracleReport rep;
  const int max_v = opt.max_violations;
  const Layout& lay = built.routed.layout;
  const topology::Graph& g = built.graph;
  const std::int64_t W = lay.num_wires();
  const std::int64_t E = g.num_edges();
  const std::int32_t V = g.num_vertices();

  // --- port/endpoint consistency + edge<->wire bijection ------------------
  if (W != E)
    rep.fail("wire count " + std::to_string(W) + " != edge count " + std::to_string(E),
             max_v);
  std::vector<std::int32_t> wires_per_edge(static_cast<std::size_t>(E), 0);
  for (const WireRef w : lay.wires()) {
    const std::int64_t i = w.index();
    if (w.edge() < 0 || w.edge() >= E) {
      rep.fail("wire " + std::to_string(i) + ": edge id " + std::to_string(w.edge()) +
                   " out of range",
               max_v);
      continue;
    }
    ++wires_per_edge[static_cast<std::size_t>(w.edge())];
    if (w.npts() < 2) {
      rep.fail("wire " + std::to_string(i) + ": fewer than 2 points", max_v);
      continue;
    }
    if (std::abs(w.h_layer() - w.v_layer()) != 1 || w.h_layer() % 2 != 1)
      rep.fail("wire " + std::to_string(i) + ": bad layer pair (h=" +
                   std::to_string(w.h_layer()) + ", v=" + std::to_string(w.v_layer()) + ")",
               max_v);
    const topology::Edge& e = g.edge(w.edge());
    const Rect& ru = lay.node_rect(e.u);
    const Rect& rv = lay.node_rect(e.v);
    const Point a = w.front();
    const Point b = w.back();
    const bool uv = on_boundary(ru, a) && on_boundary(rv, b);
    const bool vu = on_boundary(rv, a) && on_boundary(ru, b);
    if (!uv && !vu)
      rep.fail("wire " + std::to_string(i) + " (edge " + std::to_string(w.edge()) +
                   "): endpoints " + point_str(a) + ", " + point_str(b) +
                   " not on the boundaries of nodes " + std::to_string(e.u) + "/" +
                   std::to_string(e.v),
               max_v);
  }
  for (std::int64_t e = 0; e < E; ++e)
    if (wires_per_edge[static_cast<std::size_t>(e)] != 1)
      rep.fail("edge " + std::to_string(e) + " has " +
                   std::to_string(wires_per_edge[static_cast<std::size_t>(e)]) +
                   " wires (want 1)",
               max_v);

  // --- node disjointness (never checked by the production validator) ------
  if (V <= opt.node_pair_cap) {
    rep.node_pass_ran = true;
    for (std::int32_t u = 0; u < V; ++u) {
      const Rect& ru = lay.node_rect(u);
      if (ru.empty()) continue;
      for (std::int32_t v = u + 1; v < V; ++v) {
        const Rect& rv = lay.node_rect(v);
        if (rv.empty()) continue;
        if (ru.x0 <= rv.x1 && rv.x0 <= ru.x1 && ru.y0 <= rv.y1 && rv.y0 <= ru.y1)
          rep.fail("node rects " + std::to_string(u) + " and " + std::to_string(v) +
                       " intersect",
                   max_v);
      }
    }
  }

  // --- brute-force cross-wire + clearance passes ---------------------------
  const std::vector<OSeg> segs = extract_segments(lay, rep, max_v);
  if (W <= opt.brute_force_wire_cap) {
    rep.overlap_pass_ran = true;
    // Track exclusivity, quadratically: every pair of same-layer segments.
    // Same orientation + same line: closed spans must be disjoint.  Mixed
    // orientation on one layer: any crossing is illegal (the layer
    // discipline says a layer carries one orientation only).
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const OSeg& a = segs[i];
      for (std::size_t j = i + 1; j < segs.size(); ++j) {
        const OSeg& b = segs[j];
        if (a.layer != b.layer) continue;
        if (a.horizontal == b.horizontal) {
          if (a.line == b.line && a.lo <= b.hi && b.lo <= a.hi)
            rep.fail("overlap on layer " + std::to_string(a.layer) +
                         (a.horizontal ? " y=" : " x=") + std::to_string(a.line) +
                         ": wires " + std::to_string(a.wire) + " and " +
                         std::to_string(b.wire),
                     max_v);
        } else if (b.lo <= a.line && a.line <= b.hi && a.lo <= b.line && b.line <= a.hi) {
          rep.fail("perpendicular segments share layer " + std::to_string(a.layer) +
                       " at " + point_str(seg_point(a, b.line)) + ": wires " +
                       std::to_string(a.wire) + " and " + std::to_string(b.wire),
                   max_v);
        }
      }
    }
    // Node clearance, quadratically: a segment may meet a node rectangle
    // only at a single boundary point that is one of its wire's endpoints,
    // and only on the wire's own two nodes.
    for (const OSeg& s : segs) {
      const WireRef w = lay.wires()[s.wire];
      const bool edge_ok = w.edge() >= 0 && w.edge() < E;
      const std::int32_t eu = edge_ok ? g.edge(w.edge()).u : -1;
      const std::int32_t ev = edge_ok ? g.edge(w.edge()).v : -1;
      for (std::int32_t v = 0; v < V; ++v) {
        Coord lo, hi;
        if (!seg_rect_intersection(s, lay.node_rect(v), &lo, &hi)) continue;
        if (v != eu && v != ev) {
          rep.fail("wire " + std::to_string(s.wire) + " enters foreign node " +
                       std::to_string(v) + " at " + point_str(seg_point(s, lo)),
                   max_v);
          continue;
        }
        const Point p = seg_point(s, lo);
        if (lo != hi || !(p == w.front() || p == w.back()))
          rep.fail("wire " + std::to_string(s.wire) + " overlaps its own node " +
                       std::to_string(v) + " beyond the attachment point at " +
                       point_str(p),
                   max_v);
      }
    }
  }

  // --- wirelength recomputation -------------------------------------------
  const MeasuredBounds m = measure_bounds(builder, params, built);
  // Universal per-wire lower bound: a rectilinear route can never be
  // shorter than the Manhattan distance between its endpoints.
  for (const WireRef w : lay.wires()) {
    if (w.npts() < 2) continue;  // reported above
    const Point a = w.front();
    const Point b = w.back();
    const std::int64_t manhattan = std::abs(static_cast<std::int64_t>(b.x) - a.x) +
                                   std::abs(static_cast<std::int64_t>(b.y) - a.y);
    const std::int64_t len = polyline_length(w);
    if (len < manhattan)
      rep.fail("wire " + std::to_string(w.index()) + ": polyline length " +
                   std::to_string(len) + " below endpoint Manhattan distance " +
                   std::to_string(manhattan),
               max_v);
  }
  // The chunk-parallel production reductions must agree exactly with the
  // serial scalar recompute.
  if (lay.total_wire_length() != m.total_wire_length)
    rep.fail("Layout::total_wire_length() " + std::to_string(lay.total_wire_length()) +
                 " != serial recompute " + std::to_string(m.total_wire_length),
             max_v);
  if (lay.max_wire_length() != m.max_wire_length)
    rep.fail("Layout::max_wire_length() " + std::to_string(lay.max_wire_length()) +
                 " != serial recompute " + std::to_string(m.max_wire_length),
             max_v);

  // --- paper-bound recomputation ------------------------------------------
  if (const core::BoundSpec* spec = builder.bound_spec()) {
    rep.bounds_checked = true;
    if (spec->area_leading && params.n >= spec->area_min_n) {
      const double bound = spec->area_slack * m.area_leading;
      if (static_cast<double>(m.area) > bound)
        rep.fail("area " + std::to_string(m.area) + " exceeds " +
                     std::to_string(spec->area_slack) + " x leading term " +
                     std::to_string(m.area_leading) + " (" + spec->claim + ")",
                 max_v);
    }
    if (spec->tracks_exact) {
      const std::int64_t want = spec->tracks_exact(params);
      if (m.distinct_tracks != want)
        rep.fail("distinct horizontal tracks " + std::to_string(m.distinct_tracks) +
                     " != " + std::to_string(want) + " (" + spec->claim + ")",
                 max_v);
    }
    if (spec->layers_exact && W > 0) {
      // Exact once there are enough wires for the round-robin layer
      // assigner to have touched every pair; below that, an upper bound.
      const int want = spec->layers_exact(params);
      if (W >= 2 * static_cast<std::int64_t>(want) ? m.num_layers != want
                                                   : m.num_layers > want)
        rep.fail("layer count " + std::to_string(m.num_layers) + " != " +
                     std::to_string(want) + " (" + spec->claim + ")",
                 max_v);
    }
    // Exact host-embedding wirelength equalities.  Checked against the
    // quantities measured from the recovered lattice / vertex ids, so a
    // permuted placement or missing edge trips them even when the layout
    // stays geometrically clean.
    const auto check_wl = [&](const std::function<std::int64_t(const core::BuildParams&)>& fn,
                              std::int64_t measured, const char* host) {
      if (!fn) return;
      if (measured < 0) {
        rep.fail(std::string("host wirelength (") + host +
                     ") claimed but lattice not recoverable (" + spec->claim + ")",
                 max_v);
        return;
      }
      const std::int64_t want = fn(params);
      if (measured != want)
        rep.fail(std::string("host wirelength (") + host + ") " + std::to_string(measured) +
                     " != exact closed form " + std::to_string(want) + " (" + spec->claim +
                     ")",
                 max_v);
    };
    check_wl(spec->wl_grid_exact, m.wl_grid_host, "grid");
    check_wl(spec->wl_cylinder_exact, m.wl_cylinder_host, "cylinder");
    check_wl(spec->wl_tree_exact, m.wl_tree_host, "tree");
  }

  // Universal lower bound: with pairwise-disjoint nodes inside the bounding
  // box, the grid-point count cannot be below the nodes' combined footprint.
  if (rep.node_pass_ran && rep.ok) {
    std::int64_t node_area = 0;
    for (std::int32_t v = 0; v < V; ++v) node_area += lay.node_rect(v).area();
    if (lay.area() < node_area)
      rep.fail("area " + std::to_string(lay.area()) + " below combined node footprint " +
                   std::to_string(node_area),
               max_v);
  }

  return rep;
}

}  // namespace starlay::check
