#include "starlay/check/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <string>

namespace starlay::check {

namespace {

using layout::Coord;
using layout::Layout;
using layout::Point;
using layout::Rect;
using layout::WireRef;

/// Oracle-side oriented segment, extracted directly from the point list
/// (deliberately NOT via Layout::segments(), which is production code).
struct OSeg {
  std::int16_t layer;
  bool horizontal;
  Coord line;     ///< y for horizontal, x for vertical
  Coord lo, hi;   ///< closed span
  std::int64_t wire;
};

std::string point_str(Point p) {
  return "(" + std::to_string(p.x) + ", " + std::to_string(p.y) + ")";
}

bool on_boundary(const Rect& r, Point p) {
  return !r.empty() && r.contains(p) && !r.strictly_contains(p);
}

/// Extracts every non-degenerate segment of every wire, checking
/// rectilinearity on the way (a diagonal step is reported and skipped).
std::vector<OSeg> extract_segments(const Layout& lay, OracleReport& rep, int max_v) {
  std::vector<OSeg> segs;
  for (const WireRef w : lay.wires()) {
    for (int i = 1; i < w.npts(); ++i) {
      const Point a = w.pt(i - 1);
      const Point b = w.pt(i);
      if (a == b) continue;
      if (a.x != b.x && a.y != b.y) {
        rep.fail("wire " + std::to_string(w.index()) + ": diagonal step " + point_str(a) +
                     " -> " + point_str(b),
                 max_v);
        continue;
      }
      if (a.y == b.y)
        segs.push_back({w.h_layer(), true, a.y, std::min(a.x, b.x), std::max(a.x, b.x),
                        w.index()});
      else
        segs.push_back({w.v_layer(), false, a.x, std::min(a.y, b.y), std::max(a.y, b.y),
                        w.index()});
    }
  }
  return segs;
}

/// Closed intersection of a segment with a rectangle: returns false when
/// empty, else [*lo, *hi] along the segment's axis.
bool seg_rect_intersection(const OSeg& s, const Rect& r, Coord* lo, Coord* hi) {
  if (r.empty()) return false;
  if (s.horizontal) {
    if (s.line < r.y0 || s.line > r.y1) return false;
    *lo = std::max(s.lo, r.x0);
    *hi = std::min(s.hi, r.x1);
  } else {
    if (s.line < r.x0 || s.line > r.x1) return false;
    *lo = std::max(s.lo, r.y0);
    *hi = std::min(s.hi, r.y1);
  }
  return *lo <= *hi;
}

Point seg_point(const OSeg& s, Coord along) {
  return s.horizontal ? Point{along, s.line} : Point{s.line, along};
}

}  // namespace

MeasuredBounds measure_bounds(const core::LayoutBuilder& builder,
                              const core::BuildParams& params,
                              const core::BuildResult& built) {
  MeasuredBounds m;
  const Layout& lay = built.routed.layout;
  m.area = lay.area();
  m.num_layers = lay.num_layers();
  // Distinct horizontal grid lines carrying wire segments — the collinear
  // model's track count, recomputed from raw geometry.
  std::vector<Coord> lines;
  for (const WireRef w : lay.wires())
    for (int i = 1; i < w.npts(); ++i) {
      const Point a = w.pt(i - 1);
      const Point b = w.pt(i);
      if (a.y == b.y && a.x != b.x) lines.push_back(a.y);
    }
  std::sort(lines.begin(), lines.end());
  m.distinct_tracks =
      std::unique(lines.begin(), lines.end()) - lines.begin();
  if (const core::BoundSpec* spec = builder.bound_spec())
    if (spec->area_leading) m.area_leading = spec->area_leading(params);
  return m;
}

OracleReport run_oracle(const core::LayoutBuilder& builder, const core::BuildParams& params,
                        const core::BuildResult& built, const OracleOptions& opt) {
  OracleReport rep;
  const int max_v = opt.max_violations;
  const Layout& lay = built.routed.layout;
  const topology::Graph& g = built.graph;
  const std::int64_t W = lay.num_wires();
  const std::int64_t E = g.num_edges();
  const std::int32_t V = g.num_vertices();

  // --- port/endpoint consistency + edge<->wire bijection ------------------
  if (W != E)
    rep.fail("wire count " + std::to_string(W) + " != edge count " + std::to_string(E),
             max_v);
  std::vector<std::int32_t> wires_per_edge(static_cast<std::size_t>(E), 0);
  for (const WireRef w : lay.wires()) {
    const std::int64_t i = w.index();
    if (w.edge() < 0 || w.edge() >= E) {
      rep.fail("wire " + std::to_string(i) + ": edge id " + std::to_string(w.edge()) +
                   " out of range",
               max_v);
      continue;
    }
    ++wires_per_edge[static_cast<std::size_t>(w.edge())];
    if (w.npts() < 2) {
      rep.fail("wire " + std::to_string(i) + ": fewer than 2 points", max_v);
      continue;
    }
    if (std::abs(w.h_layer() - w.v_layer()) != 1 || w.h_layer() % 2 != 1)
      rep.fail("wire " + std::to_string(i) + ": bad layer pair (h=" +
                   std::to_string(w.h_layer()) + ", v=" + std::to_string(w.v_layer()) + ")",
               max_v);
    const topology::Edge& e = g.edge(w.edge());
    const Rect& ru = lay.node_rect(e.u);
    const Rect& rv = lay.node_rect(e.v);
    const Point a = w.front();
    const Point b = w.back();
    const bool uv = on_boundary(ru, a) && on_boundary(rv, b);
    const bool vu = on_boundary(rv, a) && on_boundary(ru, b);
    if (!uv && !vu)
      rep.fail("wire " + std::to_string(i) + " (edge " + std::to_string(w.edge()) +
                   "): endpoints " + point_str(a) + ", " + point_str(b) +
                   " not on the boundaries of nodes " + std::to_string(e.u) + "/" +
                   std::to_string(e.v),
               max_v);
  }
  for (std::int64_t e = 0; e < E; ++e)
    if (wires_per_edge[static_cast<std::size_t>(e)] != 1)
      rep.fail("edge " + std::to_string(e) + " has " +
                   std::to_string(wires_per_edge[static_cast<std::size_t>(e)]) +
                   " wires (want 1)",
               max_v);

  // --- node disjointness (never checked by the production validator) ------
  if (V <= opt.node_pair_cap) {
    rep.node_pass_ran = true;
    for (std::int32_t u = 0; u < V; ++u) {
      const Rect& ru = lay.node_rect(u);
      if (ru.empty()) continue;
      for (std::int32_t v = u + 1; v < V; ++v) {
        const Rect& rv = lay.node_rect(v);
        if (rv.empty()) continue;
        if (ru.x0 <= rv.x1 && rv.x0 <= ru.x1 && ru.y0 <= rv.y1 && rv.y0 <= ru.y1)
          rep.fail("node rects " + std::to_string(u) + " and " + std::to_string(v) +
                       " intersect",
                   max_v);
      }
    }
  }

  // --- brute-force cross-wire + clearance passes ---------------------------
  const std::vector<OSeg> segs = extract_segments(lay, rep, max_v);
  if (W <= opt.brute_force_wire_cap) {
    rep.overlap_pass_ran = true;
    // Track exclusivity, quadratically: every pair of same-layer segments.
    // Same orientation + same line: closed spans must be disjoint.  Mixed
    // orientation on one layer: any crossing is illegal (the layer
    // discipline says a layer carries one orientation only).
    for (std::size_t i = 0; i < segs.size(); ++i) {
      const OSeg& a = segs[i];
      for (std::size_t j = i + 1; j < segs.size(); ++j) {
        const OSeg& b = segs[j];
        if (a.layer != b.layer) continue;
        if (a.horizontal == b.horizontal) {
          if (a.line == b.line && a.lo <= b.hi && b.lo <= a.hi)
            rep.fail("overlap on layer " + std::to_string(a.layer) +
                         (a.horizontal ? " y=" : " x=") + std::to_string(a.line) +
                         ": wires " + std::to_string(a.wire) + " and " +
                         std::to_string(b.wire),
                     max_v);
        } else if (b.lo <= a.line && a.line <= b.hi && a.lo <= b.line && b.line <= a.hi) {
          rep.fail("perpendicular segments share layer " + std::to_string(a.layer) +
                       " at " + point_str(seg_point(a, b.line)) + ": wires " +
                       std::to_string(a.wire) + " and " + std::to_string(b.wire),
                   max_v);
        }
      }
    }
    // Node clearance, quadratically: a segment may meet a node rectangle
    // only at a single boundary point that is one of its wire's endpoints,
    // and only on the wire's own two nodes.
    for (const OSeg& s : segs) {
      const WireRef w = lay.wires()[s.wire];
      const bool edge_ok = w.edge() >= 0 && w.edge() < E;
      const std::int32_t eu = edge_ok ? g.edge(w.edge()).u : -1;
      const std::int32_t ev = edge_ok ? g.edge(w.edge()).v : -1;
      for (std::int32_t v = 0; v < V; ++v) {
        Coord lo, hi;
        if (!seg_rect_intersection(s, lay.node_rect(v), &lo, &hi)) continue;
        if (v != eu && v != ev) {
          rep.fail("wire " + std::to_string(s.wire) + " enters foreign node " +
                       std::to_string(v) + " at " + point_str(seg_point(s, lo)),
                   max_v);
          continue;
        }
        const Point p = seg_point(s, lo);
        if (lo != hi || !(p == w.front() || p == w.back()))
          rep.fail("wire " + std::to_string(s.wire) + " overlaps its own node " +
                       std::to_string(v) + " beyond the attachment point at " +
                       point_str(p),
                   max_v);
      }
    }
  }

  // --- paper-bound recomputation ------------------------------------------
  if (const core::BoundSpec* spec = builder.bound_spec()) {
    rep.bounds_checked = true;
    const MeasuredBounds m = measure_bounds(builder, params, built);
    if (spec->area_leading && params.n >= spec->area_min_n) {
      const double bound = spec->area_slack * m.area_leading;
      if (static_cast<double>(m.area) > bound)
        rep.fail("area " + std::to_string(m.area) + " exceeds " +
                     std::to_string(spec->area_slack) + " x leading term " +
                     std::to_string(m.area_leading) + " (" + spec->claim + ")",
                 max_v);
    }
    if (spec->tracks_exact) {
      const std::int64_t want = spec->tracks_exact(params);
      if (m.distinct_tracks != want)
        rep.fail("distinct horizontal tracks " + std::to_string(m.distinct_tracks) +
                     " != " + std::to_string(want) + " (" + spec->claim + ")",
                 max_v);
    }
    if (spec->layers_exact && W > 0) {
      // Exact once there are enough wires for the round-robin layer
      // assigner to have touched every pair; below that, an upper bound.
      const int want = spec->layers_exact(params);
      if (W >= 2 * static_cast<std::int64_t>(want) ? m.num_layers != want
                                                   : m.num_layers > want)
        rep.fail("layer count " + std::to_string(m.num_layers) + " != " +
                     std::to_string(want) + " (" + spec->claim + ")",
                 max_v);
    }
  }

  // Universal lower bound: with pairwise-disjoint nodes inside the bounding
  // box, the grid-point count cannot be below the nodes' combined footprint.
  if (rep.node_pass_ran && rep.ok) {
    std::int64_t node_area = 0;
    for (std::int32_t v = 0; v < V; ++v) node_area += lay.node_rect(v).area();
    if (lay.area() < node_area)
      rep.fail("area " + std::to_string(lay.area()) + " below combined node footprint " +
                   std::to_string(node_area),
               max_v);
  }

  return rep;
}

}  // namespace starlay::check
