#include "starlay/check/metamorphic.hpp"

#include <unistd.h>

#include <algorithm>
#include <climits>
#include <string>

#include "starlay/core/build_request.hpp"
#include "starlay/core/star_shard.hpp"
#include "starlay/layout/fingerprint.hpp"
#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/support/check.hpp"
#include "starlay/support/mapped_file.hpp"
#include "starlay/support/telemetry.hpp"
#include "starlay/support/thread_pool.hpp"

namespace starlay::check {

namespace {

namespace tel = support::telemetry;

/// Restores the global pool size on scope exit so relations compose.
class PoolGuard {
 public:
  PoolGuard() : saved_(support::ThreadPool::instance().num_threads()) {}
  ~PoolGuard() { support::ThreadPool::instance().set_num_threads(saved_); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;

 private:
  int saved_;
};

std::string rect_str(const layout::Rect& r) {
  return "[" + std::to_string(r.x0) + "," + std::to_string(r.y0) + " .. " +
         std::to_string(r.x1) + "," + std::to_string(r.y1) + "]";
}

/// One streaming fingerprint run through the stable API; reports a
/// violation (and returns false) when the build itself fails.
bool stream_digest(const core::LayoutBuilder& builder, const core::BuildParams& params,
                   const char* label, MetamorphicReport& rep, std::uint64_t* digest,
                   std::int64_t* wires = nullptr) {
  layout::FingerprintingSink sink;
  core::BuildOutcome<layout::RouteStats> out = builder.try_build_stream(params, sink);
  if (!out.ok()) {
    rep.fail(std::string(label) + ": try_build_stream failed: " + out.error().message);
    return false;
  }
  *digest = sink.fingerprint();
  if (wires) *wires = sink.num_wires();
  return true;
}

}  // namespace

MetamorphicReport run_metamorphic(const core::LayoutBuilder& builder,
                                  const core::BuildParams& params,
                                  const MetamorphicOptions& opt) {
  MetamorphicReport rep;

  // --- reference build: materialized through the stable API ---------------
  core::BuildOutcome<core::BuildResult> mat = builder.try_build(params);
  if (!mat.ok()) {
    rep.fail("materialized try_build failed: " + mat.error().message);
    return rep;
  }
  const core::BuildResult& built = mat.value();
  const layout::Layout& lay = built.routed.layout;
  const std::uint64_t mat_digest = layout::wire_fingerprint(lay);

  // --- streaming == materialized ------------------------------------------
  {
    ++rep.num_relations_checked;
    layout::FingerprintingSink sink;
    core::BuildOutcome<layout::RouteStats> out = builder.try_build_stream(params, sink);
    if (!out.ok()) {
      rep.fail("streaming try_build_stream failed: " + out.error().message);
    } else {
      if (sink.fingerprint() != mat_digest)
        rep.fail("stream digest " + std::to_string(sink.fingerprint()) +
                 " != materialized digest " + std::to_string(mat_digest));
      if (sink.num_wires() != lay.num_wires())
        rep.fail("stream wire count " + std::to_string(sink.num_wires()) +
                 " != materialized " + std::to_string(lay.num_wires()));
      if (sink.total_wire_length() != lay.total_wire_length())
        rep.fail("stream total wire length " + std::to_string(sink.total_wire_length()) +
                 " != materialized " + std::to_string(lay.total_wire_length()));
      if (sink.max_wire_length() != lay.max_wire_length())
        rep.fail("stream max wire length " + std::to_string(sink.max_wire_length()) +
                 " != materialized " + std::to_string(lay.max_wire_length()));
      const std::vector<layout::Rect>& rects = sink.node_rects();
      if (static_cast<std::int64_t>(rects.size()) != lay.num_nodes()) {
        rep.fail("stream node count " + std::to_string(rects.size()) +
                 " != materialized " + std::to_string(lay.num_nodes()));
      } else {
        for (std::int32_t v = 0; v < lay.num_nodes(); ++v)
          if (rects[static_cast<std::size_t>(v)] != lay.node_rect(v)) {
            rep.fail("node " + std::to_string(v) + " rect differs: stream " +
                     rect_str(rects[static_cast<std::size_t>(v)]) + " vs materialized " +
                     rect_str(lay.node_rect(v)));
            break;
          }
      }
    }
  }

  // --- thread-count invariance --------------------------------------------
  if (!opt.thread_counts.empty()) {
    ++rep.num_relations_checked;
    PoolGuard guard;
    std::vector<int> counts = opt.thread_counts;
    std::sort(counts.begin(), counts.end());
    counts.erase(std::unique(counts.begin(), counts.end()), counts.end());
    for (int t : counts) {
      if (t < 1) continue;
      support::ThreadPool::instance().set_num_threads(t);
      std::uint64_t digest = 0;
      const std::string label = "threads=" + std::to_string(t);
      if (stream_digest(builder, params, label.c_str(), rep, &digest) &&
          digest != mat_digest)
        rep.fail(label + ": digest " + std::to_string(digest) +
                 " != materialized digest " + std::to_string(mat_digest));
    }
  }

  // --- telemetry neutrality ------------------------------------------------
  if (opt.check_telemetry) {
    ++rep.num_relations_checked;
    tel::TraceOptions topt;
    topt.sample_rss = false;  // keep the relation free of sampler-thread noise
    tel::start_trace(topt);
    std::uint64_t digest = 0;
    const bool built_ok =
        stream_digest(builder, params, "telemetry-on", rep, &digest);
    tel::stop_trace();
    if (built_ok && digest != mat_digest)
      rep.fail("telemetry-on digest " + std::to_string(digest) +
               " != telemetry-off digest " + std::to_string(mat_digest));
  }

  // --- SIMD-level invariance -----------------------------------------------
  if (opt.check_simd_levels) {
    ++rep.num_relations_checked;
    namespace kr = layout::kernels;
    // Reference validation at the ambient level; every forced level must
    // reproduce it message-for-message (the count pass is exact and the
    // materialization re-scan is scalar, so even the retained strings agree).
    const layout::ValidationReport ref = layout::validate_layout(built.graph, lay);
    for (kr::SimdLevel level :
         {kr::SimdLevel::kScalar, kr::SimdLevel::kSSE4, kr::SimdLevel::kAVX2}) {
      if (!kr::level_supported(level)) continue;
      kr::ScopedForcedLevel forced(level);
      const std::string label = std::string("simd=") + kr::level_name(level);
      if (layout::wire_fingerprint(lay) != mat_digest)
        rep.fail(label + ": materialized digest differs from ambient level");
      std::uint64_t digest = 0;
      if (stream_digest(builder, params, label.c_str(), rep, &digest) &&
          digest != mat_digest)
        rep.fail(label + ": stream digest " + std::to_string(digest) +
                 " != ambient-level digest " + std::to_string(mat_digest));
      const layout::ValidationReport vr = layout::validate_layout(built.graph, lay);
      if (vr.ok != ref.ok || vr.num_errors_total != ref.num_errors_total)
        rep.fail(label + ": validator verdict " + std::to_string(vr.num_errors_total) +
                 " error(s) != ambient level " + std::to_string(ref.num_errors_total));
      if (vr.errors != ref.errors)
        rep.fail(label + ": retained validator messages differ from ambient level");
    }
  }

  // --- certifier == validator ----------------------------------------------
  if (opt.check_certifier) {
    ++rep.num_relations_checked;
    layout::StreamOptions sopt;
    sopt.band_shift = opt.certifier_band_shift;
    layout::StreamingCertifier cert(sopt);
    core::BuildOutcome<layout::RouteStats> out = builder.try_build_stream(params, cert);
    if (!out.ok()) {
      rep.fail("certifier try_build_stream failed: " + out.error().message);
    } else {
      const layout::StreamReport& sr = cert.report();
      const layout::ValidationReport vr = layout::validate_layout(built.graph, lay);
      if (sr.validation.ok != vr.ok)
        rep.fail(std::string("certifier verdict ") + (sr.validation.ok ? "ok" : "fail") +
                 " != validator " + (vr.ok ? "ok" : "fail"));
      if (sr.validation.num_errors_total != vr.num_errors_total)
        rep.fail("certifier error count " + std::to_string(sr.validation.num_errors_total) +
                 " != validator " + std::to_string(vr.num_errors_total));
      if (sr.num_wires != lay.num_wires())
        rep.fail("certifier wire count " + std::to_string(sr.num_wires) +
                 " != materialized " + std::to_string(lay.num_wires()));
      if (sr.num_layers != lay.num_layers())
        rep.fail("certifier layer count " + std::to_string(sr.num_layers) +
                 " != materialized " + std::to_string(lay.num_layers()));
      if (sr.bounding_box != lay.bounding_box())
        rep.fail("certifier bounding box " + rect_str(sr.bounding_box) +
                 " != materialized " + rect_str(lay.bounding_box()));
      if (sr.area != lay.area())
        rep.fail("certifier area " + std::to_string(sr.area) + " != materialized " +
                 std::to_string(lay.area()));
      if (sr.total_wire_length != lay.total_wire_length())
        rep.fail("certifier total wire length " + std::to_string(sr.total_wire_length) +
                 " != materialized " + std::to_string(lay.total_wire_length()));
      if (sr.max_wire_length != lay.max_wire_length())
        rep.fail("certifier max wire length " + std::to_string(sr.max_wire_length) +
                 " != materialized " + std::to_string(lay.max_wire_length()));
    }
  }

  // --- sharded == single-process (star family) ------------------------------
  if (opt.check_sharded && !opt.shard_counts.empty() &&
      builder.name() == std::string_view("star")) {
    ++rep.num_relations_checked;
    const layout::ValidationReport vr = layout::validate_layout(built.graph, lay);
    // Per-process spill root: ctest runs many check cases concurrently
    // from one working directory, and the engine truncates + removes its
    // own star_n<n> subtree, so concurrent cases must not share one.
    const std::string spill_root =
        "starlay_spill_check_" + std::to_string(::getpid());
    for (int shards : opt.shard_counts) {
      if (shards < 1) continue;
      const std::string label = "sharded k=" + std::to_string(shards);
      core::ShardOptions sho;
      sho.base_size = params.base_size;
      sho.num_shards = shards;
      sho.spill_dir = spill_root;
      core::BuildOutcome<core::ShardReport> out =
          core::star_certify_sharded(params.n, sho);
      if (!out.ok()) {
        rep.fail(label + ": star_certify_sharded failed: " + out.error().message);
        continue;
      }
      const core::ShardReport& sr = out.value();
      if (sr.wire_fingerprint != mat_digest)
        rep.fail(label + ": digest " + std::to_string(sr.wire_fingerprint) +
                 " != materialized digest " + std::to_string(mat_digest));
      if (sr.stream.validation.ok != vr.ok)
        rep.fail(label + std::string(": verdict ") +
                 (sr.stream.validation.ok ? "ok" : "fail") + " != validator " +
                 (vr.ok ? "ok" : "fail"));
      if (sr.stream.validation.num_errors_total != vr.num_errors_total)
        rep.fail(label + ": error count " +
                 std::to_string(sr.stream.validation.num_errors_total) +
                 " != validator " + std::to_string(vr.num_errors_total));
      if (sr.stream.num_wires != lay.num_wires())
        rep.fail(label + ": wire count " + std::to_string(sr.stream.num_wires) +
                 " != materialized " + std::to_string(lay.num_wires()));
      if (sr.stream.bounding_box != lay.bounding_box())
        rep.fail(label + ": bounding box " + rect_str(sr.stream.bounding_box) +
                 " != materialized " + rect_str(lay.bounding_box()));
      if (sr.stream.area != lay.area())
        rep.fail(label + ": area " + std::to_string(sr.stream.area) +
                 " != materialized " + std::to_string(lay.area()));
      if (sr.stream.total_wire_length != lay.total_wire_length())
        rep.fail(label + ": wire length " +
                 std::to_string(sr.stream.total_wire_length) + " != materialized " +
                 std::to_string(lay.total_wire_length()));
      if (sr.stream.max_wire_length != lay.max_wire_length())
        rep.fail(label + ": max wire length " +
                 std::to_string(sr.stream.max_wire_length) + " != materialized " +
                 std::to_string(lay.max_wire_length()));
    }
    support::remove_tree(spill_root);  // the engine only removes star_n<n>
  }

  // --- optimized certifies clean, area never grows --------------------------
  if (opt.check_optimized && builder.supports_passes()) {
    ++rep.num_relations_checked;
    const core::PassList combos[] = {{/*refine=*/false, /*compact=*/true},
                                     {/*refine=*/true, /*compact=*/false},
                                     {/*refine=*/true, /*compact=*/true}};
    for (const core::PassList& passes : combos) {
      std::string label = "passes=";
      if (passes.refine) label += "refine";
      if (passes.compact) label += passes.refine ? ",compact" : "compact";
      layout::StreamingCertifier cert;
      core::BuildRequest request;
      request.family = std::string(builder.name());
      request.params = params;
      request.passes = passes;
      core::BuildOutcome<layout::RouteStats> out = builder.try_build_stream(request, cert);
      if (!out.ok()) {
        rep.fail(label + ": optimized try_build_stream failed: " + out.error().message);
        continue;
      }
      const layout::StreamReport& sr = cert.report();
      if (!sr.validation.ok)
        rep.fail(label + ": optimized layout fails certification: " +
                 sr.validation.summary());
      if (sr.area > lay.area())
        rep.fail(label + ": optimized area " + std::to_string(sr.area) +
                 " > unoptimized area " + std::to_string(lay.area()));
    }
  }

  // --- API parity -----------------------------------------------------------
  if (opt.check_api_parity) {
    ++rep.num_relations_checked;
    // In range: the stable tier succeeded above, so the asserting tier must
    // not throw on the identical input.
    try {
      (void)builder.build(params);
    } catch (const starlay::InvariantError& e) {
      rep.fail(std::string("build() threw where try_build() succeeded: ") + e.what());
    }
    // Out of range on both sides: the stable tier must return
    // kSizeOutOfRange and the asserting tier must throw.
    const auto [lo, hi] = builder.n_range();
    for (int probe : {lo > INT_MIN ? lo - 1 : lo, hi < INT_MAX ? hi + 1 : hi}) {
      if (probe >= lo && probe <= hi) continue;
      core::BuildParams p = params;
      p.n = probe;
      core::BuildOutcome<core::BuildResult> out = builder.try_build(p);
      if (out.ok())
        rep.fail("try_build accepted out-of-range n=" + std::to_string(probe));
      else if (out.error().code != core::BuildErrorCode::kSizeOutOfRange)
        rep.fail("try_build(n=" + std::to_string(probe) + ") returned code '" +
                 core::build_error_code_name(out.error().code) +
                 "', want size-out-of-range");
      bool threw = false;
      try {
        (void)builder.build(p);
      } catch (const starlay::InvariantError&) {
        threw = true;
      }
      if (!threw)
        rep.fail("build() accepted out-of-range n=" + std::to_string(probe));
    }
  }

  return rep;
}

}  // namespace starlay::check
