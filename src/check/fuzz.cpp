#include "starlay/check/fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <string>

#include "starlay/support/thread_pool.hpp"

namespace starlay::check {

namespace {

class PoolGuard {
 public:
  PoolGuard() : saved_(support::ThreadPool::instance().num_threads()) {}
  ~PoolGuard() { support::ThreadPool::instance().set_num_threads(saved_); }
  PoolGuard(const PoolGuard&) = delete;
  PoolGuard& operator=(const PoolGuard&) = delete;

 private:
  int saved_;
};

/// Per-family cap on n keeping each case inside the oracle's brute-force
/// caps (so every generated case gets the full quadratic passes) and the
/// whole multi-build metamorphic battery under ~a second.
int family_n_cap(std::string_view name, int lo, int hi) {
  struct Cap {
    std::string_view name;
    int cap;
  };
  static constexpr Cap kCaps[] = {
      {"star", 6},          {"star-compact", 6},      {"pancake", 6},
      {"bubble-sort", 6},   {"transposition", 6},     {"multilayer-star", 6},
      {"hcn", 4},           {"hfn", 4},               {"multilayer-hcn", 4},
      {"multilayer-hfn", 4},{"hypercube", 8},         {"folded-hypercube", 8},
      {"enhanced-hypercube", 8},                      {"3ary-cube", 4},
      {"complete2d", 12},   {"complete2d-compact", 12},
      {"complete2d-directed", 10},                    {"collinear", 16},
      {"collinear-paper", 16},
  };
  for (const Cap& c : kCaps)
    if (c.name == name) return std::min(hi, c.cap);
  return std::min(hi, lo + 4);  // unknown / baseline families: stay tiny
}

/// Uniform pick in [lo, hi] from the splitmix stream.
int pick(std::uint64_t& state, int lo, int hi) {
  return lo + static_cast<int>(splitmix64(state) %
                               static_cast<std::uint64_t>(hi - lo + 1));
}

FuzzCase generate_case(std::uint64_t& state,
                       const std::vector<const core::LayoutBuilder*>& pool) {
  const core::LayoutBuilder* b =
      pool[static_cast<std::size_t>(splitmix64(state) % pool.size())];
  FuzzCase c;
  c.family = std::string(b->name());
  const auto [lo, hi] = b->n_range();
  c.params.n = pick(state, lo, family_n_cap(b->name(), lo, hi));
  const unsigned used = b->params_used();
  if (used & core::kParamBaseSize) c.params.base_size = pick(state, 2, 4);
  if (used & core::kParamLayers) c.params.layers = pick(state, 2, 6);
  if (used & core::kParamMultiplicity) c.params.multiplicity = pick(state, 1, 3);
  static constexpr int kThreadChoices[] = {1, 2, 4};
  c.threads = kThreadChoices[splitmix64(state) % 3];
  return c;
}

bool still_fails(const FuzzCase& c, const FuzzOptions& opt, FuzzReport& rep) {
  ++rep.builds_run;
  return !check_case(c, opt.oracle, opt.metamorphic).empty();
}

/// Greedy shrink: threads to 1, param fields to defaults, then n downward;
/// each reduction kept only while the case still fails.
FuzzCase shrink_case(FuzzCase c, const FuzzOptions& opt, FuzzReport& rep) {
  const core::BuildParams defaults;
  int steps = 0;
  bool changed = true;
  while (changed && steps < 48) {
    changed = false;
    FuzzCase t = c;
    if (c.threads != 1) {
      t.threads = 1;
      if (++steps, still_fails(t, opt, rep)) { c = t; changed = true; continue; }
      t = c;
    }
    if (c.params.multiplicity != defaults.multiplicity) {
      t.params.multiplicity = defaults.multiplicity;
      if (++steps, still_fails(t, opt, rep)) { c = t; changed = true; continue; }
      t = c;
    }
    if (c.params.layers != defaults.layers) {
      t.params.layers = defaults.layers;
      if (++steps, still_fails(t, opt, rep)) { c = t; changed = true; continue; }
      t = c;
    }
    if (c.params.base_size != defaults.base_size) {
      t.params.base_size = defaults.base_size;
      if (++steps, still_fails(t, opt, rep)) { c = t; changed = true; continue; }
      t = c;
    }
    const core::LayoutBuilder* b = core::find_builder(c.family);
    if (b && c.params.n > b->n_range().first) {
      t.params.n = c.params.n - 1;
      if (++steps, still_fails(t, opt, rep)) { c = t; changed = true; continue; }
    }
  }
  return c;
}

/// Resolves the fuzzed family subset; unknown names become failures.
std::vector<const core::LayoutBuilder*> resolve_families(const FuzzOptions& opt,
                                                         FuzzReport& rep) {
  std::vector<const core::LayoutBuilder*> pool;
  if (opt.families.empty()) return core::all_builders();
  for (const std::string& name : opt.families) {
    core::BuildOutcome<const core::LayoutBuilder*> found = core::try_find_builder(name);
    if (found.ok()) {
      pool.push_back(found.value());
    } else {
      rep.ok = false;
      FuzzFailure f;
      f.shrunk.family = f.original.family = name;
      f.violations.push_back(found.error().message);
      rep.failures.push_back(std::move(f));
    }
  }
  return pool;
}

}  // namespace

std::string FuzzCase::line() const {
  return "family=" + family + " n=" + std::to_string(params.n) + " base=" +
         std::to_string(params.base_size) + " layers=" + std::to_string(params.layers) +
         " mult=" + std::to_string(params.multiplicity) +
         " threads=" + std::to_string(threads);
}

bool FuzzCase::parse(std::string_view text, FuzzCase* out, std::string* err) {
  FuzzCase c;
  bool have_family = false, have_n = false;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    if (i >= text.size()) break;
    std::size_t e = i;
    while (e < text.size() && text[e] != ' ' && text[e] != '\t') ++e;
    const std::string_view tok = text.substr(i, e - i);
    i = e;
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0 || eq + 1 >= tok.size()) {
      if (err) *err = "malformed token '" + std::string(tok) + "' (want key=value)";
      return false;
    }
    const std::string_view key = tok.substr(0, eq);
    const std::string_view val = tok.substr(eq + 1);
    if (key == "family") {
      c.family = std::string(val);
      have_family = true;
      continue;
    }
    int parsed = 0;
    for (char ch : val) {
      if (ch < '0' || ch > '9' || parsed > 99999) {
        if (err) *err = "bad integer for '" + std::string(key) + "': " + std::string(val);
        return false;
      }
      parsed = parsed * 10 + (ch - '0');
    }
    if (val.empty()) {
      if (err) *err = "empty value for '" + std::string(key) + "'";
      return false;
    }
    if (key == "n") {
      c.params.n = parsed;
      have_n = true;
    } else if (key == "base") {
      c.params.base_size = parsed;
    } else if (key == "layers") {
      c.params.layers = parsed;
    } else if (key == "mult") {
      c.params.multiplicity = parsed;
    } else if (key == "threads") {
      c.threads = parsed;
    } else {
      if (err) *err = "unknown key '" + std::string(key) + "'";
      return false;
    }
  }
  if (!have_family || !have_n) {
    if (err) *err = "a case needs at least family= and n=";
    return false;
  }
  *out = c;
  return true;
}

std::vector<std::string> check_case(const FuzzCase& c, const OracleOptions& oracle_opt,
                                    const MetamorphicOptions& meta_opt) {
  std::vector<std::string> out;
  core::BuildOutcome<const core::LayoutBuilder*> found = core::try_find_builder(c.family);
  if (!found.ok()) {
    out.push_back("lookup: " + found.error().message);
    return out;
  }
  const core::LayoutBuilder& b = *found.value();
  PoolGuard guard;
  support::ThreadPool::instance().set_num_threads(std::max(1, c.threads));

  core::BuildOutcome<core::BuildResult> built = b.try_build(c.params);
  if (!built.ok()) {
    out.push_back("build: " + built.error().message);
    return out;
  }
  OracleReport orep = run_oracle(b, c.params, built.value(), oracle_opt);
  for (const std::string& v : orep.violations) out.push_back("oracle: " + v);
  MetamorphicReport mrep = run_metamorphic(b, c.params, meta_opt);
  for (const std::string& v : mrep.violations) out.push_back("metamorphic: " + v);
  return out;
}

FuzzReport run_fuzz(const FuzzOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  FuzzReport rep;
  const std::vector<const core::LayoutBuilder*> pool = resolve_families(opt, rep);
  if (pool.empty()) {
    rep.ok = false;
    return rep;
  }
  std::uint64_t state = opt.seed;
  const auto elapsed = [&t0] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };
  while (elapsed() < opt.budget_seconds &&
         (opt.max_cases < 0 || rep.cases_run < opt.max_cases)) {
    const FuzzCase c = generate_case(state, pool);
    ++rep.cases_run;
    ++rep.builds_run;
    const std::vector<std::string> violations =
        check_case(c, opt.oracle, opt.metamorphic);
    if (violations.empty()) continue;
    rep.ok = false;
    FuzzFailure f;
    f.original = c;
    f.shrunk = opt.shrink ? shrink_case(c, opt, rep) : c;
    // Report the *shrunk* case's violations: that is the repro we print.
    f.violations = opt.shrink ? check_case(f.shrunk, opt.oracle, opt.metamorphic)
                              : violations;
    if (f.violations.empty()) f.violations = violations;  // flaky shrink guard
    rep.failures.push_back(std::move(f));
  }
  rep.seconds = elapsed();
  return rep;
}

FuzzReport run_replay(const std::vector<std::string>& lines, const FuzzOptions& opt) {
  const auto t0 = std::chrono::steady_clock::now();
  FuzzReport rep;
  for (const std::string& raw : lines) {
    std::string_view line = raw;
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t')) line.remove_prefix(1);
    if (line.empty() || line.front() == '#') continue;
    FuzzCase c;
    std::string err;
    ++rep.cases_run;
    if (!FuzzCase::parse(line, &c, &err)) {
      rep.ok = false;
      FuzzFailure f;
      f.original.family = f.shrunk.family = std::string(line);
      f.violations.push_back("parse: " + err);
      rep.failures.push_back(std::move(f));
      continue;
    }
    ++rep.builds_run;
    std::vector<std::string> violations = check_case(c, opt.oracle, opt.metamorphic);
    if (violations.empty()) continue;
    rep.ok = false;
    FuzzFailure f;
    f.original = f.shrunk = c;
    f.violations = std::move(violations);
    rep.failures.push_back(std::move(f));
  }
  rep.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return rep;
}

}  // namespace starlay::check
