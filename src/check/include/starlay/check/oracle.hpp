#pragma once
/// \file oracle.hpp
/// \brief The invariant oracle: re-validates a finished layout with
///        algorithms *independent* of the production validator.
///
/// The production validator (layout/validate.hpp, stream_certify.hpp) is
/// fast and index-based — and therefore shares failure modes with the code
/// it checks: a sort-order bug, a band-boundary bug, or an interval
/// convention slip can hide in both the construction and the check.  The
/// oracle trades speed for independence:
///
///  * *Brute-force track exclusivity* — O(W^2) pairwise comparison of all
///    same-layer segments, no sorting, no indexing, under a wire-count cap
///    (oracle cases are small by design; above the cap the quadratic pass
///    is skipped and reported as such).
///  * *Port/endpoint consistency* — every wire's edge id is in range, every
///    edge has exactly one wire, and each wire endpoint lies on the
///    boundary (not interior) of its own endpoint's node rectangle, the
///    two endpoints matching the edge's {u, v} in some order.
///  * *Node disjointness* — node rectangles are pairwise disjoint (a rule
///    the production validator never checks: it only relates wires to
///    nodes).
///  * *Paper-bound recomputation* — the family's BoundSpec (builder.hpp)
///    closed forms are re-evaluated from BuildParams and compared against
///    the layout's measured area, distinct-track count, and layer count.
///  * *Wirelength recomputation* — total and max wirelength are re-summed
///    serially from the raw polylines (independently of the chunk-parallel
///    production reductions) and compared exactly; every polyline must be
///    at least the Manhattan distance between its endpoints; and where the
///    BoundSpec claims exact host-embedding wirelengths (grid / cylinder /
///    3-ary tree), the oracle recovers the logical lattice from the node
///    rectangle centers and checks the closed forms as *equalities*.
///
/// A violation from the oracle on a validator-clean layout means one of
/// the two is wrong — exactly the disagreement machine-generated checking
/// exists to surface.

#include <cstdint>
#include <string>
#include <vector>

#include "starlay/core/builder.hpp"

namespace starlay::check {

struct OracleOptions {
  /// Skip the O(W^2) overlap pass (and the O(W * V) clearance pass) above
  /// this wire count; the quadratic passes exist for small adversarial
  /// cases, not for production sizes.
  std::int64_t brute_force_wire_cap = 4000;
  /// Skip the O(V^2) node-disjointness pass above this node count.
  std::int64_t node_pair_cap = 4096;
  /// Stop recording messages after this many (counting continues).
  int max_violations = 25;
};

struct OracleReport {
  bool ok = true;
  std::vector<std::string> violations;  ///< first max_violations messages
  std::int64_t num_violations_total = 0;
  bool overlap_pass_ran = false;  ///< O(W^2) pass was inside the cap
  bool node_pass_ran = false;     ///< O(V^2) pass was inside the cap
  bool bounds_checked = false;    ///< the family registered a BoundSpec

  void fail(std::string msg, int max_violations) {
    ok = false;
    ++num_violations_total;
    if (static_cast<int>(violations.size()) < max_violations)
      violations.push_back(std::move(msg));
  }
};

/// Measured quantities the BoundSpec bounds are compared against; exposed
/// for the calibration mode (`starcheck --calibrate`).
struct MeasuredBounds {
  std::int64_t area = 0;
  double area_leading = 0.0;  ///< BoundSpec closed form; 0 when absent
  std::int64_t distinct_tracks = 0;  ///< distinct horizontal wire lines
  int num_layers = 0;

  /// Serial scalar recompute of the routed wirelengths from the raw
  /// polylines — deliberately NOT Layout::total_wire_length(), so the
  /// chunk-parallel production reduction has an independent witness.
  std::int64_t total_wire_length = 0;
  std::int64_t max_wire_length = 0;

  /// Host-embedding wirelengths measured from the finished geometry: the
  /// logical lattice is recovered by ranking the distinct node-rectangle
  /// center lines, then each subject edge contributes the host-graph
  /// distance between its endpoints' lattice coordinates (grid: Manhattan;
  /// cylinder: the axis with fewer distinct lines wraps, ties wrap y).
  /// The tree host is measured from vertex ids alone (complete 3-ary tree
  /// distance), independent of geometry.  -1 = not recoverable (a node
  /// without a rectangle).
  std::int64_t wl_grid_host = -1;
  std::int64_t wl_cylinder_host = -1;
  std::int64_t wl_tree_host = -1;
};

/// Recomputes the measured quantities of \p built for bound comparison.
MeasuredBounds measure_bounds(const core::LayoutBuilder& builder,
                              const core::BuildParams& params,
                              const core::BuildResult& built);

/// Runs every oracle pass over a materialized build.
OracleReport run_oracle(const core::LayoutBuilder& builder, const core::BuildParams& params,
                        const core::BuildResult& built, const OracleOptions& opt = {});

}  // namespace starlay::check
