#pragma once
/// \file metamorphic.hpp
/// \brief Metamorphic / differential relations between execution modes.
///
/// A single build has no ground truth to compare against; two builds of the
/// *same* family at the *same* params through *different* execution paths
/// do.  The tree promises several such equivalences, and this layer turns
/// each promise into a checked relation over the canonical wire
/// fingerprint (layout/fingerprint.hpp):
///
///  * streaming == materialized — build_stream() into a FingerprintingSink
///    yields the digest of the Layout build() materializes, and the node
///    rectangles agree box-for-box.
///  * thread-count invariance — the digest is identical at every pool size
///    swept (the deterministic-parallelism contract of thread_pool.hpp).
///  * telemetry neutrality — a build under an active trace produces the
///    same digest as one without (instrumentation observes, never steers).
///  * SIMD-level invariance — the digest and the full validation report
///    (verdict, error total, messages) are identical under every compiled
///    and CPU-supported kernel level (scalar, SSE4.2, AVX2), forced via
///    kernels::ScopedForcedLevel.
///  * certifier == validator — StreamingCertifier's verdict, error count
///    and measured quantities equal validate_layout() on the materialized
///    layout.
///  * sharded == single-process (star family) — the out-of-core engine
///    (core/star_shard.hpp) reproduces the materialized wire fingerprint,
///    verdict, error total, and measured quantities at several shard
///    counts, sequentially in-process.
///  * API parity — try_build() succeeds exactly where the asserting build()
///    does not throw, and both reject the out-of-range probes
///    n_range().first - 1 and n_range().second + 1.
///  * optimized == certified, never larger — for families that thread
///    optimization passes (supports_passes()), every pass combination
///    ({compact}, {refine}, {refine, compact}) streams through a
///    StreamingCertifier to a clean verdict with area no larger than the
///    unoptimized layout's.
///
/// All relations restore global state (pool size, telemetry) on exit, so
/// runs compose: the fuzz driver calls this per case in a loop.

#include <string>
#include <vector>

#include "starlay/core/builder.hpp"

namespace starlay::check {

struct MetamorphicOptions {
  /// Pool sizes swept for the thread-count relation (the current size is
  /// restored afterwards).  Sizes are deduplicated against each other.
  std::vector<int> thread_counts = {1, 2, 4};
  bool check_telemetry = true;     ///< telemetry-on vs -off digest equality
  bool check_simd_levels = true;   ///< scalar vs SSE4.2 vs AVX2 equality
  bool check_certifier = true;     ///< StreamingCertifier vs validate_layout
  bool check_sharded = true;       ///< out-of-core engine vs materialized (star)
  bool check_api_parity = true;    ///< try_build vs build, out-of-range probes
  bool check_optimized = true;     ///< pass combos certify clean, area <= baseline
  /// Shard counts swept for the sharded relation (star family only).
  std::vector<int> shard_counts = {1, 2, 4};
  /// Small band_shift exercises multi-band batching on small cases.
  int certifier_band_shift = 12;
};

struct MetamorphicReport {
  bool ok = true;
  std::vector<std::string> violations;
  int num_relations_checked = 0;

  void fail(std::string msg) {
    ok = false;
    violations.push_back(std::move(msg));
  }
};

/// Runs every enabled relation for (builder, params).  The params must be
/// valid for the family; an unexpected build failure is itself reported as
/// a violation.
MetamorphicReport run_metamorphic(const core::LayoutBuilder& builder,
                                  const core::BuildParams& params,
                                  const MetamorphicOptions& opt = {});

}  // namespace starlay::check
