#pragma once
/// \file fuzz.hpp
/// \brief Seeded fuzz driver over (family, n, params, threads) tuples.
///
/// The oracle and metamorphic layers check one configuration; the fuzz
/// driver decides *which* configurations, deterministically:
///
///  * Cases come from a splitmix64 stream seeded by FuzzOptions::seed —
///    the same seed enumerates the same cases on every machine, so a
///    failure reported by CI is reproducible locally from the seed alone.
///  * Parameter fields are only randomized where the family reads them
///    (params_used()), inside known-valid ranges, with n capped per family
///    so each case stays brute-force-oracle sized.
///  * A failing case is *shrunk* greedily — threads to 1, each param field
///    back to its default, then n downward — re-running the checks at each
///    candidate and keeping the reduction only while the failure persists.
///    The survivor is a minimal one-line repro (FuzzCase::line()).
///  * A corpus of such lines (tests/starcheck_corpus.txt) is replayed by
///    run_replay(), pinning previously-found shapes forever.
///
/// Case lines are plain `key=value` pairs:
///     family=star n=5 base=3 layers=2 mult=1 threads=2

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "starlay/check/metamorphic.hpp"
#include "starlay/check/oracle.hpp"
#include "starlay/core/builder.hpp"

namespace starlay::check {

/// One fuzz configuration; round-trips through line()/parse().
struct FuzzCase {
  std::string family;
  core::BuildParams params;
  int threads = 1;

  /// Canonical one-line repro form.
  std::string line() const;

  /// Parses a line() back; false (with \p err set) on malformed input.
  /// '#' comments and blank lines are rejected here — callers filter them.
  static bool parse(std::string_view text, FuzzCase* out, std::string* err);
};

struct FuzzOptions {
  std::uint64_t seed = 1;
  double budget_seconds = 30.0;   ///< wall-clock stop condition
  std::int64_t max_cases = -1;    ///< additional case cap; -1 = budget only
  std::vector<std::string> families;  ///< subset to fuzz; empty = all
  bool shrink = true;             ///< shrink failures to minimal repro
  OracleOptions oracle;
  MetamorphicOptions metamorphic;
};

/// One failing configuration, after shrinking.
struct FuzzFailure {
  FuzzCase shrunk;                     ///< minimal failing case
  FuzzCase original;                   ///< the case as first generated
  std::vector<std::string> violations; ///< messages from the shrunk case
};

struct FuzzReport {
  bool ok = true;
  std::int64_t cases_run = 0;
  std::int64_t builds_run = 0;  ///< builds including shrink candidates
  double seconds = 0.0;
  std::vector<FuzzFailure> failures;
};

/// Runs oracle + metamorphic checks for one configuration.  Sets the pool
/// to c.threads for the duration (restored on return).  Returns all
/// violation messages, prefixed by the layer that produced them; empty
/// means the case passed.
std::vector<std::string> check_case(const FuzzCase& c, const OracleOptions& oracle_opt = {},
                                    const MetamorphicOptions& meta_opt = {});

/// Seeded enumeration under a time budget, with shrinking.
FuzzReport run_fuzz(const FuzzOptions& opt);

/// Replays corpus lines ('#' comments and blanks skipped).  Failures are
/// reported un-shrunk: the corpus line *is* the minimal repro.
FuzzReport run_replay(const std::vector<std::string>& lines, const FuzzOptions& opt);

/// The deterministic PRNG of the driver (public for tests).
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace starlay::check
