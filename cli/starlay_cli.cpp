/// \file starlay_cli.cpp
/// \brief Command-line driver over the builder registry.
///
/// Builds any registered network family in either execution mode:
///
///   starlay_cli --list
///   starlay_cli --family star --n 8                      # materialize + validate
///   starlay_cli --family star --n 10 --mode stream       # certify without storing
///   starlay_cli --family star --n 11 --mode sharded --workers 4   # out of core
///   starlay_cli --family hcn --n 4 --svg hcn4.svg
///   starlay_cli --family star --n 8 --mode stream --trace trace.json
///   starlay_cli --family star --n 9 --mode stream --window 0,0,200,120 --svg tile.svg
///   starlay_cli --family star --n 8 --passes compact,refine   # optimization passes
///
/// Flags accept both `--flag value` and `--flag=value`.  Stream mode routes
/// the construction through a StreamingCertifier: the geometry is validated
/// and measured tile-by-tile and discarded, so peak memory stays far below
/// the materialized wire store.  --trace records a telemetry session around
/// the build (per-phase span tree, counters, RSS profile), prints the
/// per-phase summary table, and writes the JSON trace to the given path.
///
/// Sharded mode (star family only) runs the out-of-core engine: rank-range
/// shards executed by forked worker processes over mmap-backed spill files,
/// bit-identical to stream mode's report and fingerprint.  --workers
/// defaults to the STARLAY_WORKERS environment variable (1 when unset).
///
/// --passes splices optimization passes into the layout pipeline
/// (core/pass.hpp): `refine` runs the KL-seeded placement refiner before
/// routing, `compact` re-packs the planned channel tracks after routing.
/// Only the star hierarchy machinery families (star, star-compact, pancake,
/// bubble-sort, transposition) thread passes; the optimized layout is
/// validated/certified exactly like the unoptimized one.
///
/// Every argument-value failure (unknown family, out-of-range n, a flag the
/// family does not read, an unknown --passes entry, malformed integers)
/// reports a structured builder error and exits 2 — no invariant abort is
/// reachable from argument values.
/// Exit codes: 0 valid layout, 1 validation failure, 2 bad arguments
/// (including an unknown --passes entry, with a nearest-name suggestion),
/// 3 resource budget exceeded or internal error, 4 spill I/O failure
/// (unwritable spill dir, disk full; the failing path and errno are
/// reported).

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "starlay/core/builder.hpp"
#include "starlay/core/params_cli.hpp"
#include "starlay/core/star_shard.hpp"
#include "starlay/layout/kernels/kernels.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/render/render.hpp"
#include "starlay/support/math.hpp"
#include "starlay/support/telemetry.hpp"

namespace {

namespace tel = starlay::support::telemetry;

long peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss / 1024;  // Linux reports KiB
}

struct Args {
  starlay::core::ParsedBuildRequest build;  ///< family/params/passes/runtime options
  std::string mode = "materialize";
  std::string svg_path;
  std::string trace_path;
  bool list = false;
  bool have_window = false;
  starlay::layout::Rect window;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: starlay_cli --family NAME --n INT [options]\n"
               "       starlay_cli --list\n"
               "options (--flag VALUE and --flag=VALUE both accepted):\n"
               "  --mode materialize|stream|sharded\n"
               "                              execution mode (default materialize; sharded\n"
               "                              is the star family's out-of-core engine)\n"
               "  --shards INT                sharded mode: rank-range shards (default auto)\n"
               "  --workers INT               sharded mode: forked worker processes\n"
               "                              (default $STARLAY_WORKERS, else 1)\n"
               "  --spill-dir PATH            sharded mode: spill root (default starlay_spill)\n"
               "  --passes LIST               comma-separated optimization passes spliced\n"
               "                              into the layout pipeline: 'compact' (channel\n"
               "                              track re-packing after routing), 'refine'\n"
               "                              (KL-seeded placement refinement before\n"
               "                              routing).  Star-machinery families only;\n"
               "                              an unknown name exits 2 with a suggestion\n"
               "  --base-size INT             star hierarchy base block size (default 3)\n"
               "  --layers INT                wiring layers for multilayer families (default 2)\n"
               "  --multiplicity INT          parallel links per pair (default 1)\n"
               "  --threads INT               worker pool size for this run\n"
               "                              (default $STARLAY_THREADS, else all cores;\n"
               "                              results are bit-identical at every setting)\n"
               "  --trace PATH                record a telemetry trace; print the per-phase\n"
               "                              table and write the JSON span tree to PATH\n"
               "  --simd scalar|sse4|avx2     force the certification kernel level (clamps\n"
               "                              down to what the CPU/build supports; the\n"
               "                              effective level is echoed in the output and,\n"
               "                              with --trace, as a trace counter)\n"
               "  --window X0,Y0,X1,Y1        retained/rendered grid window\n"
               "  --svg PATH                  write an SVG rendering (needs --window in stream mode)\n"
               "exit codes: 0 valid layout, 1 validation failure, 2 bad arguments\n"
               "(including an unknown --passes entry), 3 resource budget exceeded or\n"
               "internal error, 4 spill I/O failure\n");
  std::exit(code);
}

[[noreturn]] void arg_error(const std::string& message) {
  std::fprintf(stderr, "starlay_cli: %s\n", message.c_str());
  std::exit(2);
}

Args parse_args(int argc, char** argv) {
  Args a;
  // The shared request parser owns every flag that shapes the build itself
  // (family, sizes, passes, threads/simd/workers/shards/spill-dir, with
  // STARLAY_* environment defaults); only driver concerns stay here.
  std::vector<std::string> extra;
  auto parsed = starlay::core::parse_build_request(argc, argv, &extra);
  if (!parsed.ok()) arg_error(parsed.error().message);
  a.build = parsed.value();

  // Driver-specific flags, same two spellings as the shared parser.
  for (std::size_t i = 0; i < extra.size(); ++i) {
    const std::string_view arg = extra[i];
    const auto value_of = [&](std::string_view flag, std::string* out) -> bool {
      if (arg == flag) {
        if (i + 1 >= extra.size()) arg_error("missing value after '" + std::string(flag) + "'");
        *out = extra[++i];
        return true;
      }
      if (arg.size() > flag.size() && arg.substr(0, flag.size()) == flag &&
          arg[flag.size()] == '=') {
        *out = std::string(arg.substr(flag.size() + 1));
        return true;
      }
      return false;
    };
    std::string v;
    if (arg == "--help") usage(0);
    if (arg == "--list") {
      a.list = true;
    } else if (value_of("--mode", &a.mode) || value_of("--svg", &a.svg_path) ||
               value_of("--trace", &a.trace_path)) {
      // stored by value_of
    } else if (value_of("--window", &v)) {
      long long x0, y0, x1, y1;
      if (std::sscanf(v.c_str(), "%lld,%lld,%lld,%lld", &x0, &y0, &x1, &y1) != 4)
        arg_error("bad --window '" + v + "' (want X0,Y0,X1,Y1)");
      a.window = {x0, y0, x1, y1};
      a.have_window = true;
    } else {
      arg_error("unknown argument '" + std::string(arg) + "' (see --help)");
    }
  }
  return a;
}

void print_kv(const char* key, const std::string& value) {
  std::printf("%-18s %s\n", key, value.c_str());
}

void print_kv(const char* key, std::int64_t value) { print_kv(key, std::to_string(value)); }

/// Pass names in pipeline order, for the `passes` report line.
std::string pass_names(const starlay::core::PassList& p) {
  std::string s;
  if (p.refine) s += "refine";
  if (p.compact) s += s.empty() ? "compact" : ",compact";
  return s;
}

int run_list() {
  for (const auto* b : starlay::core::all_builders()) {
    const auto [lo, hi] = b->n_range();
    std::printf("%-20s n in [%d, %d]  %.*s\n", std::string(b->name()).c_str(), lo, hi,
                static_cast<int>(b->description().size()), b->description().data());
  }
  return 0;
}

/// Maps a builder error to the documented exit code: argument-value errors
/// exit 2, blown resource budgets exit 3, spill I/O failures exit 4.
[[noreturn]] void build_error_exit(const starlay::core::BuildError& err) {
  std::fprintf(stderr, "starlay_cli: [%s] %s\n",
               starlay::core::build_error_code_name(err.code), err.message.c_str());
  if (err.code == starlay::core::BuildErrorCode::kIoError)
    std::fprintf(stderr, "starlay_cli: failing path '%s' (errno %d)\n",
                 err.io_path.c_str(), err.io_errno);
  switch (err.code) {
    case starlay::core::BuildErrorCode::kBudgetExceeded:
      std::exit(3);
    case starlay::core::BuildErrorCode::kIoError:
      std::exit(4);
    default:
      std::exit(2);
  }
}

/// Finishes an optional --trace session: prints the per-phase table and
/// writes the JSON span tree.
void finish_trace(const Args& a) {
  if (a.trace_path.empty()) return;
  const tel::TraceReport rep = tel::stop_trace();
  std::printf("%s", rep.summary_table().c_str());
  if (!tel::write_trace_json(rep, a.trace_path)) {
    std::fprintf(stderr, "starlay_cli: cannot write trace to '%s'\n", a.trace_path.c_str());
    std::exit(3);
  }
  print_kv("trace", a.trace_path);
}

}  // namespace

int main(int argc, char** argv) {
  namespace kr = starlay::layout::kernels;
  const Args a = parse_args(argc, argv);
  if (a.list) return run_list();

  auto resolved = starlay::core::resolve_request(a.build);
  if (!resolved.ok()) build_error_exit(resolved.error());
  const starlay::core::LayoutBuilder* builder = resolved.value();
  const starlay::core::BuildRequest& request = a.build.request;
  const starlay::core::BuildParams& params = request.params;
  const starlay::core::PassList& passes = request.passes;

  if (a.mode != "materialize" && a.mode != "stream" && a.mode != "sharded")
    arg_error("unknown mode '" + a.mode + "' (want materialize, stream, or sharded)");
  if (a.mode == "sharded" && builder->name() != std::string_view("star"))
    arg_error("mode 'sharded' supports only --family star (got '" +
              std::string(builder->name()) + "')");
  if (a.mode == "sharded" && !passes.empty())
    arg_error("mode 'sharded' does not support --passes (use --mode stream)");

  // Apply the request's runtime options for the whole run: the forced
  // kernel level mirrors the STARLAY_SIMD clamp-down contract (the parser
  // already rejected unknown spellings), and --threads resizes the pool
  // before any job starts, so every phase (and the trace) sees one
  // consistent level and pool size.
  const starlay::core::ScopedRequestRuntime runtime(request.options);
  const char* simd_name = kr::level_name(runtime.active_level());

  if (!a.trace_path.empty()) {
    tel::start_trace();
    // Echo the kernel level into the trace: a one-shot counter keyed by the
    // effective level, so traces from different machines/overrides stay
    // distinguishable after the fact.
    tel::count(std::string("simd.") + simd_name, 1);
  }
  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (a.mode == "sharded") {
      starlay::core::ShardOptions sopt;
      sopt.base_size = params.base_size;
      sopt.num_shards = request.options.shards;
      sopt.workers = request.options.workers;
      sopt.spill_dir = request.options.spill_dir;
      auto sharded = starlay::core::star_certify_sharded(params.n, sopt);
      if (!sharded.ok()) build_error_exit(sharded.error());
      const starlay::core::ShardReport& srep = sharded.value();
      const auto& rep = srep.stream;
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      finish_trace(a);

      print_kv("family", std::string(builder->name()));
      print_kv("mode", std::string("sharded"));
      print_kv("vertices", starlay::factorial(params.n));
      print_kv("edges", rep.num_wires);
      print_kv("wires", rep.num_wires);
      print_kv("layers", static_cast<std::int64_t>(rep.num_layers));
      print_kv("width", rep.bounding_box.width());
      print_kv("height", rep.bounding_box.height());
      print_kv("area", rep.area);
      print_kv("node_size", srep.route.node_size);
      print_kv("wire_length", rep.total_wire_length);
      print_kv("max_wire_length", rep.max_wire_length);
      print_kv("batches", rep.num_batches);
      print_kv("replays", rep.num_replays);
      print_kv("fingerprint", std::to_string(srep.wire_fingerprint));
      print_kv("shards", static_cast<std::int64_t>(srep.num_shards));
      print_kv("workers", static_cast<std::int64_t>(srep.num_workers));
      print_kv("spill_mb", srep.spill_bytes_written >> 20);
      print_kv("worker_rss_mb", srep.worker_peak_rss_bytes >> 20);
      print_kv("simd", std::string(simd_name));
      print_kv("verdict", rep.validation.summary());
      print_kv("peak_rss_mb", static_cast<std::int64_t>(peak_rss_mb()));
      print_kv("seconds", std::to_string(secs));
      for (const auto& msg : rep.validation.errors) std::printf("error: %s\n", msg.c_str());
      return rep.validation.ok ? 0 : 1;
    }
    if (a.mode == "stream") {
      starlay::layout::StreamOptions sopt;
      if (a.have_window) sopt.retain_window = a.window;
      starlay::layout::StreamingCertifier sink(sopt);
      starlay::topology::Graph graph(0);
      auto streamed = builder->try_build_stream(request, sink, &graph);
      if (!streamed.ok()) build_error_exit(streamed.error());
      const starlay::layout::RouteStats& stats = streamed.value();
      const auto& rep = sink.report();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      finish_trace(a);

      print_kv("family", std::string(builder->name()));
      print_kv("mode", std::string("stream"));
      if (!passes.empty()) print_kv("passes", pass_names(passes));
      print_kv("vertices", static_cast<std::int64_t>(graph.num_vertices()));
      print_kv("edges", graph.num_edges());
      print_kv("wires", rep.num_wires);
      print_kv("layers", static_cast<std::int64_t>(rep.num_layers));
      print_kv("width", rep.bounding_box.width());
      print_kv("height", rep.bounding_box.height());
      print_kv("area", rep.area);
      print_kv("node_size", stats.node_size);
      print_kv("wire_length", rep.total_wire_length);
      print_kv("max_wire_length", rep.max_wire_length);
      print_kv("batches", rep.num_batches);
      print_kv("replays", rep.num_replays);
      print_kv("simd", std::string(simd_name));
      print_kv("verdict", rep.validation.summary());
      print_kv("peak_rss_mb", static_cast<std::int64_t>(peak_rss_mb()));
      print_kv("seconds", std::to_string(secs));
      for (const auto& msg : rep.validation.errors) std::printf("error: %s\n", msg.c_str());

      if (!a.svg_path.empty()) {
        starlay::render::SvgOptions ropt;
        ropt.window = a.have_window ? a.window : starlay::layout::Rect{};
        starlay::render::write_svg(sink.retained_layout(), a.svg_path, ropt);
        print_kv("svg", a.svg_path);
      }
      return rep.validation.ok ? 0 : 1;
    }

    starlay::topology::Graph graph(0);
    starlay::layout::Layout lay{0};
    std::int64_t node_size = 0;
    if (passes.empty()) {
      auto built = builder->try_build(params);
      if (!built.ok()) build_error_exit(built.error());
      starlay::core::BuildResult& result = built.value();
      graph = std::move(result.graph);
      node_size = result.routed.node_size;
      lay = std::move(result.routed.layout);
    } else {
      // The optimized construction only exists in pipeline (streaming) form;
      // materialize it through a sink and validate like any stored layout.
      starlay::layout::MaterializingSink msink;
      auto streamed = builder->try_build_stream(request, msink, &graph);
      if (!streamed.ok()) build_error_exit(streamed.error());
      node_size = streamed.value().node_size;
      lay = msink.take_layout();
    }
    const starlay::layout::ValidationReport rep = starlay::layout::validate_layout(graph, lay);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    finish_trace(a);

    print_kv("family", std::string(builder->name()));
    print_kv("mode", std::string("materialize"));
    if (!passes.empty()) print_kv("passes", pass_names(passes));
    print_kv("vertices", static_cast<std::int64_t>(graph.num_vertices()));
    print_kv("edges", graph.num_edges());
    print_kv("wires", lay.num_wires());
    print_kv("layers", static_cast<std::int64_t>(lay.num_layers()));
    print_kv("width", lay.width());
    print_kv("height", lay.height());
    print_kv("area", lay.area());
    print_kv("node_size", node_size);
    print_kv("wire_length", lay.total_wire_length());
    print_kv("max_wire_length", lay.max_wire_length());
    print_kv("simd", std::string(simd_name));
    print_kv("verdict", rep.summary());
    print_kv("peak_rss_mb", static_cast<std::int64_t>(peak_rss_mb()));
    print_kv("seconds", std::to_string(secs));
    for (const auto& msg : rep.errors) std::printf("error: %s\n", msg.c_str());

    if (!a.svg_path.empty()) {
      starlay::render::SvgOptions ropt;
      if (a.have_window) ropt.window = a.window;
      starlay::render::write_svg(lay, a.svg_path, ropt);
      print_kv("svg", a.svg_path);
    }
    return rep.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "starlay_cli: %s\n", e.what());
    return 3;
  }
}
