/// \file starlay_cli.cpp
/// \brief Command-line driver over the builder registry.
///
/// Builds any registered network family in either execution mode:
///
///   starlay_cli --list
///   starlay_cli --family=star --n=8                      # materialize + validate
///   starlay_cli --family=star --n=10 --mode=stream       # certify without storing
///   starlay_cli --family=hcn --n=4 --svg=hcn4.svg
///   starlay_cli --family=star --n=9 --mode=stream --window=0,0,200,120 --svg=tile.svg
///
/// Stream mode routes the construction through a StreamingCertifier: the
/// geometry is validated and measured tile-by-tile and discarded, so peak
/// memory stays far below the materialized wire store (star n=10 certifies
/// in ~16.3M wires without ever holding them).

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "starlay/core/builder.hpp"
#include "starlay/layout/stream_certify.hpp"
#include "starlay/layout/validate.hpp"
#include "starlay/render/render.hpp"

namespace {

long peak_rss_mb() {
  struct rusage ru {};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss / 1024;  // Linux reports KiB
}

struct Args {
  std::string family;
  std::string mode = "materialize";
  std::string svg_path;
  int n = 0;
  int base_size = 3;
  int layers = 2;
  int multiplicity = 1;
  bool list = false;
  bool have_window = false;
  starlay::layout::Rect window;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: starlay_cli --family=NAME --n=INT [options]\n"
               "       starlay_cli --list\n"
               "options:\n"
               "  --mode=materialize|stream   execution mode (default materialize)\n"
               "  --base-size=INT             star hierarchy base block size (default 3)\n"
               "  --layers=INT                wiring layers for multilayer families (default 2)\n"
               "  --multiplicity=INT          parallel links per pair (default 1)\n"
               "  --window=X0,Y0,X1,Y1        retained/rendered grid window\n"
               "  --svg=PATH                  write an SVG rendering (needs --window in stream mode)\n");
  std::exit(code);
}

bool parse_flag(const char* arg, const char* name, const char** value) {
  const std::size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return false;
  if (arg[len] == '\0') {
    *value = nullptr;
    return true;
  }
  if (arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (parse_flag(argv[i], "--help", &v)) usage(0);
    if (parse_flag(argv[i], "--list", &v)) {
      a.list = true;
    } else if (parse_flag(argv[i], "--family", &v) && v) {
      a.family = v;
    } else if (parse_flag(argv[i], "--mode", &v) && v) {
      a.mode = v;
    } else if (parse_flag(argv[i], "--svg", &v) && v) {
      a.svg_path = v;
    } else if (parse_flag(argv[i], "--n", &v) && v) {
      a.n = std::atoi(v);
    } else if (parse_flag(argv[i], "--base-size", &v) && v) {
      a.base_size = std::atoi(v);
    } else if (parse_flag(argv[i], "--layers", &v) && v) {
      a.layers = std::atoi(v);
    } else if (parse_flag(argv[i], "--multiplicity", &v) && v) {
      a.multiplicity = std::atoi(v);
    } else if (parse_flag(argv[i], "--window", &v) && v) {
      long long x0, y0, x1, y1;
      if (std::sscanf(v, "%lld,%lld,%lld,%lld", &x0, &y0, &x1, &y1) != 4) {
        std::fprintf(stderr, "starlay_cli: bad --window '%s'\n", v);
        usage(2);
      }
      a.window = {x0, y0, x1, y1};
      a.have_window = true;
    } else {
      std::fprintf(stderr, "starlay_cli: unknown argument '%s'\n", argv[i]);
      usage(2);
    }
  }
  return a;
}

void print_kv(const char* key, const std::string& value) {
  std::printf("%-18s %s\n", key, value.c_str());
}

void print_kv(const char* key, std::int64_t value) { print_kv(key, std::to_string(value)); }

int run_list() {
  for (const auto* b : starlay::core::all_builders()) {
    const auto [lo, hi] = b->n_range();
    std::printf("%-20s n in [%d, %d]  %.*s\n", std::string(b->name()).c_str(), lo, hi,
                static_cast<int>(b->description().size()), b->description().data());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (a.list) return run_list();
  if (a.family.empty() || a.n == 0) usage(2);

  const starlay::core::LayoutBuilder* builder = starlay::core::find_builder(a.family);
  if (!builder) {
    std::fprintf(stderr, "starlay_cli: unknown family '%s' (try --list)\n", a.family.c_str());
    return 2;
  }
  starlay::core::BuildParams params;
  params.n = a.n;
  params.base_size = a.base_size;
  params.layers = a.layers;
  params.multiplicity = a.multiplicity;

  const auto t0 = std::chrono::steady_clock::now();
  try {
    if (a.mode == "stream") {
      starlay::layout::StreamOptions sopt;
      if (a.have_window) sopt.retain_window = a.window;
      starlay::layout::StreamingCertifier sink(sopt);
      starlay::topology::Graph graph(0);
      const starlay::layout::RouteStats stats =
          builder->build_stream(params, sink, &graph);
      const auto& rep = sink.report();
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

      print_kv("family", a.family);
      print_kv("mode", std::string("stream"));
      print_kv("vertices", static_cast<std::int64_t>(graph.num_vertices()));
      print_kv("edges", graph.num_edges());
      print_kv("wires", rep.num_wires);
      print_kv("layers", static_cast<std::int64_t>(rep.num_layers));
      print_kv("width", rep.bounding_box.width());
      print_kv("height", rep.bounding_box.height());
      print_kv("area", rep.area);
      print_kv("node_size", stats.node_size);
      print_kv("wire_length", rep.total_wire_length);
      print_kv("max_wire_length", rep.max_wire_length);
      print_kv("batches", rep.num_batches);
      print_kv("replays", rep.num_replays);
      print_kv("verdict", rep.validation.summary());
      print_kv("peak_rss_mb", static_cast<std::int64_t>(peak_rss_mb()));
      print_kv("seconds", std::to_string(secs));
      for (const auto& msg : rep.validation.errors) std::printf("error: %s\n", msg.c_str());

      if (!a.svg_path.empty()) {
        starlay::render::SvgOptions ropt;
        ropt.window = a.have_window ? a.window : starlay::layout::Rect{};
        starlay::render::write_svg(sink.retained_layout(), a.svg_path, ropt);
        print_kv("svg", a.svg_path);
      }
      return rep.validation.ok ? 0 : 1;
    }

    if (a.mode != "materialize") {
      std::fprintf(stderr, "starlay_cli: unknown mode '%s'\n", a.mode.c_str());
      return 2;
    }
    starlay::core::BuildResult result = builder->build(params);
    const starlay::layout::Layout& lay = result.routed.layout;
    const starlay::layout::ValidationReport rep =
        starlay::layout::validate_layout(result.graph, lay);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    print_kv("family", a.family);
    print_kv("mode", std::string("materialize"));
    print_kv("vertices", static_cast<std::int64_t>(result.graph.num_vertices()));
    print_kv("edges", result.graph.num_edges());
    print_kv("wires", lay.num_wires());
    print_kv("layers", static_cast<std::int64_t>(lay.num_layers()));
    print_kv("width", lay.width());
    print_kv("height", lay.height());
    print_kv("area", lay.area());
    print_kv("node_size", result.routed.node_size);
    print_kv("wire_length", lay.total_wire_length());
    print_kv("max_wire_length", lay.max_wire_length());
    print_kv("verdict", rep.summary());
    print_kv("peak_rss_mb", static_cast<std::int64_t>(peak_rss_mb()));
    print_kv("seconds", std::to_string(secs));
    for (const auto& msg : rep.errors) std::printf("error: %s\n", msg.c_str());

    if (!a.svg_path.empty()) {
      starlay::render::SvgOptions ropt;
      if (a.have_window) ropt.window = a.window;
      starlay::render::write_svg(lay, a.svg_path, ropt);
      print_kv("svg", a.svg_path);
    }
    return rep.ok ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "starlay_cli: %s\n", e.what());
    return 3;
  }
}
