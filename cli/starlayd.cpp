/// \file starlayd.cpp
/// \brief The starlay layout daemon: build once, answer forever.
///
/// Serves the line-delimited JSON protocol (serve/protocol.hpp) over a
/// Unix-domain or loopback-TCP socket:
///
///   starlayd --socket /tmp/starlay.sock
///   starlayd --port 0                 # kernel-chosen port, echoed on stdout
///   starlayd --socket s.sock --cache-mb 64
///
/// Requests (build / measure / certify / bisect / render-window) resolve to
/// a canonical BuildRequest key; identical concurrent requests share one
/// in-flight build (single-flight) and completed layouts are cached as
/// immutable snapshots under an LRU byte budget (--cache-mb).  ping /
/// stats / shutdown are control methods; {"method": "shutdown"} stops the
/// daemon cleanly.
///
/// On a successful bind the daemon prints exactly one readiness line:
///
///   listening unix PATH        or        listening tcp PORT
///
/// and serves until shutdown.  Exit codes (shared table with starlay_cli
/// and starcheck): 0 clean shutdown, 2 bad arguments, 3 internal error,
/// 4 I/O error (cannot bind or listen; the failing path and errno are
/// reported).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "starlay/serve/server.hpp"
#include "starlay/serve/service.hpp"

namespace {

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: starlayd --socket PATH | --port INT [--cache-mb INT]\n"
               "  --socket PATH    serve a Unix-domain socket at PATH\n"
               "  --port INT       serve TCP on 127.0.0.1 (0 = kernel-chosen,\n"
               "                   echoed in the readiness line)\n"
               "  --cache-mb INT   layout snapshot cache budget (default 256)\n"
               "prints 'listening unix PATH' or 'listening tcp PORT' once ready.\n"
               "exit codes: 0 clean shutdown, 2 bad arguments, 3 internal error,\n"
               "4 I/O error (cannot bind or listen)\n");
  std::exit(code);
}

[[noreturn]] void arg_error(const std::string& message) {
  std::fprintf(stderr, "starlayd: %s\n", message.c_str());
  std::exit(2);
}

int parse_int(const std::string& flag, const char* v, int lo, int hi) {
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < lo || parsed > hi)
    arg_error("bad value '" + std::string(v) + "' for " + flag);
  return static_cast<int>(parsed);
}

}  // namespace

int main(int argc, char** argv) {
  starlay::serve::Server::Options sopt;
  starlay::serve::LayoutService::Options lopt;
  bool have_endpoint = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) arg_error("missing value after '" + std::string(flag) + "'");
      return argv[++i];
    };
    if (arg == "--help") usage(0);
    if (arg == "--socket") {
      sopt.unix_path = value("--socket");
      have_endpoint = true;
    } else if (arg == "--port") {
      sopt.tcp_port = parse_int("--port", value("--port"), 0, 65535);
      have_endpoint = true;
    } else if (arg == "--cache-mb") {
      lopt.cache_bytes =
          static_cast<std::int64_t>(parse_int("--cache-mb", value("--cache-mb"), 1, 1 << 20))
          << 20;
    } else {
      arg_error("unknown argument '" + arg + "' (see --help)");
    }
  }
  if (!have_endpoint) arg_error("need --socket PATH or --port INT (see --help)");

  try {
    starlay::serve::LayoutService service(lopt);
    starlay::serve::Server server(service, sopt);
    if (starlay::core::BuildStatus st = server.listen(); !st.ok()) {
      const starlay::core::BuildError& err = st.error();
      std::fprintf(stderr, "starlayd: [%s] %s (path '%s', errno %d)\n",
                   starlay::core::build_error_code_name(err.code), err.message.c_str(),
                   err.io_path.c_str(), err.io_errno);
      return 4;
    }
    if (!sopt.unix_path.empty())
      std::printf("listening unix %s\n", sopt.unix_path.c_str());
    else
      std::printf("listening tcp %d\n", server.port());
    std::fflush(stdout);
    server.serve();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "starlayd: %s\n", e.what());
    return 3;
  }
}
