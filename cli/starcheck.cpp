/// \file starcheck.cpp
/// \brief CLI driver over the verification subsystem (src/check).
///
///   starcheck --list                                # families + registered bounds
///   starcheck --families all --seed 1 --budget 30s  # seeded fuzz run
///   starcheck --families star,hcn --max-cases 40    # subset, case-capped
///   starcheck --replay tests/starcheck_corpus.txt   # pin known shapes
///   starcheck --line "family=star n=5 threads=2"    # one exact case
///   starcheck --calibrate                           # measured-vs-claimed table
///
/// A fuzz case runs the invariant oracle (check/oracle.hpp) and the full
/// metamorphic battery (check/metamorphic.hpp) at a seeded (family, n,
/// params, threads) tuple; failures are shrunk to a minimal one-line repro
/// that --line or a corpus file replays verbatim.
///
/// Exit codes: 0 everything passed, 1 violations found, 2 bad arguments.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "starlay/check/fuzz.hpp"
#include "starlay/check/metamorphic.hpp"
#include "starlay/check/oracle.hpp"
#include "starlay/core/builder.hpp"

namespace {

using starlay::check::FuzzCase;
using starlay::check::FuzzOptions;
using starlay::check::FuzzReport;

struct Args {
  std::vector<std::string> families;  ///< empty = all
  std::uint64_t seed = 1;
  double budget_seconds = 30.0;
  std::int64_t max_cases = -1;
  std::string replay_path;
  std::string line;
  bool list = false;
  bool calibrate = false;
  bool shrink = true;
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: starcheck [--families all|A,B,...] [--seed U64] [--budget SECONDS[s]]\n"
               "                 [--max-cases N] [--no-shrink]\n"
               "       starcheck --replay PATH      replay a corpus of case lines\n"
               "       starcheck --line \"family=F n=N [base=B layers=L mult=M threads=T]\"\n"
               "       starcheck --calibrate        print measured bounds per family\n"
               "       starcheck --list             list families and registered bounds\n"
               "exit codes: 0 all cases passed, 1 failures found, 2 bad arguments,\n"
               "4 I/O error (corpus file unreadable)\n");
  std::exit(code);
}

[[noreturn]] void arg_error(const std::string& message) {
  std::fprintf(stderr, "starcheck: %s\n", message.c_str());
  std::exit(2);
}

/// Accepts `--flag value` and `--flag=value`; advances *i past the value.
bool match_flag(int argc, char** argv, int* i, std::string_view flag, std::string* value) {
  const std::string_view arg = argv[*i];
  if (arg == flag) {
    if (*i + 1 >= argc) arg_error("missing value after " + std::string(flag));
    *value = argv[++*i];
    return true;
  }
  if (arg.size() > flag.size() + 1 && arg.substr(0, flag.size()) == flag &&
      arg[flag.size()] == '=') {
    *value = std::string(arg.substr(flag.size() + 1));
    return true;
  }
  return false;
}

std::uint64_t parse_u64(const std::string& value, std::string_view flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0')
    arg_error("bad integer for " + std::string(flag) + ": " + value);
  return v;
}

double parse_seconds(const std::string& value) {
  std::string v = value;
  if (!v.empty() && (v.back() == 's' || v.back() == 'S')) v.pop_back();
  char* end = nullptr;
  const double secs = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0' || secs < 0)
    arg_error("bad duration for --budget: " + value);
  return secs;
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string value;
    if (arg == "--help" || arg == "-h") usage(0);
    if (arg == "--list") { a.list = true; continue; }
    if (arg == "--calibrate") { a.calibrate = true; continue; }
    if (arg == "--no-shrink") { a.shrink = false; continue; }
    if (match_flag(argc, argv, &i, "--families", &value)) {
      if (value != "all") {
        std::size_t start = 0;
        while (start <= value.size()) {
          const std::size_t comma = value.find(',', start);
          const std::string name =
              value.substr(start, comma == std::string::npos ? comma : comma - start);
          if (!name.empty()) a.families.push_back(name);
          if (comma == std::string::npos) break;
          start = comma + 1;
        }
        if (a.families.empty()) arg_error("--families: no family names in '" + value + "'");
      }
      continue;
    }
    if (match_flag(argc, argv, &i, "--seed", &value)) { a.seed = parse_u64(value, "--seed"); continue; }
    if (match_flag(argc, argv, &i, "--budget", &value)) { a.budget_seconds = parse_seconds(value); continue; }
    if (match_flag(argc, argv, &i, "--max-cases", &value)) {
      a.max_cases = static_cast<std::int64_t>(parse_u64(value, "--max-cases"));
      continue;
    }
    if (match_flag(argc, argv, &i, "--replay", &value)) { a.replay_path = value; continue; }
    if (match_flag(argc, argv, &i, "--line", &value)) { a.line = value; continue; }
    arg_error("unknown argument '" + std::string(arg) + "' (see --help)");
  }
  return a;
}

int report_and_exit_code(const FuzzReport& rep, const char* what) {
  std::printf("starcheck: %s: %lld case%s, %lld check runs, %.1fs\n", what,
              static_cast<long long>(rep.cases_run), rep.cases_run == 1 ? "" : "s",
              static_cast<long long>(rep.builds_run), rep.seconds);
  if (rep.ok && rep.failures.empty()) {
    std::printf("starcheck: all checks passed\n");
    return 0;
  }
  for (const starlay::check::FuzzFailure& f : rep.failures) {
    std::printf("FAIL %s\n", f.shrunk.line().c_str());
    if (f.shrunk.line() != f.original.line())
      std::printf("  (shrunk from %s)\n", f.original.line().c_str());
    for (const std::string& v : f.violations) std::printf("  %s\n", v.c_str());
  }
  std::printf("starcheck: %zu failing case%s\n", rep.failures.size(),
              rep.failures.size() == 1 ? "" : "s");
  return 1;
}

int run_list() {
  for (const starlay::core::LayoutBuilder* b : starlay::core::all_builders()) {
    const auto [lo, hi] = b->n_range();
    std::printf("%-22s n in [%d, %d]", std::string(b->name()).c_str(), lo, hi);
    if (const starlay::core::BoundSpec* spec = b->bound_spec()) {
      std::printf("  bounds:");
      if (spec->area_leading)
        std::printf(" area<=%.0fx(n>=%d)", spec->area_slack, spec->area_min_n);
      if (spec->tracks_exact) std::printf(" tracks=exact");
      if (spec->layers_exact) std::printf(" layers=exact");
      if (spec->wl_grid_exact) std::printf(" wl-grid=exact");
      if (spec->wl_cylinder_exact) std::printf(" wl-cylinder=exact");
      if (spec->wl_tree_exact) std::printf(" wl-tree=exact");
      std::printf("  [%s]", spec->claim);
    } else {
      std::printf("  (no registered bounds)");
    }
    std::printf("\n");
  }
  return 0;
}

/// Builds every family at its fuzz-cap sizes and prints measured area vs
/// the BoundSpec leading term — the table the slack factors are calibrated
/// from.
int run_calibrate(const std::vector<std::string>& families) {
  std::printf("%-22s %4s %12s %16s %8s %7s %6s %14s %10s\n", "family", "n", "area",
              "leading", "ratio", "tracks", "layers", "wl-total", "wl-max");
  int rc = 0;
  for (const starlay::core::LayoutBuilder* b : starlay::core::all_builders()) {
    if (!families.empty()) {
      bool wanted = false;
      for (const std::string& f : families) wanted = wanted || f == b->name();
      if (!wanted) continue;
    }
    const auto [lo, hi] = b->n_range();
    for (int n = lo; n <= hi && n - lo < 24; ++n) {
      FuzzCase probe;
      probe.family = std::string(b->name());
      probe.params.n = n;
      starlay::core::BuildOutcome<starlay::core::BuildResult> built =
          b->try_build(probe.params);
      if (!built.ok()) {
        std::printf("%-22s %4d  build failed: %s\n", probe.family.c_str(), n,
                    built.error().message.c_str());
        rc = 1;
        break;
      }
      const starlay::check::MeasuredBounds m =
          starlay::check::measure_bounds(*b, probe.params, built.value());
      std::printf("%-22s %4d %12lld %16.1f %8s %7lld %6d %14lld %10lld\n",
                  probe.family.c_str(), n, static_cast<long long>(m.area), m.area_leading,
                  m.area_leading > 0
                      ? std::to_string(static_cast<double>(m.area) / m.area_leading)
                            .substr(0, 8)
                            .c_str()
                      : "-",
                  static_cast<long long>(m.distinct_tracks), m.num_layers,
                  static_cast<long long>(m.total_wire_length),
                  static_cast<long long>(m.max_wire_length));
      // Stop each family once builds get big; calibration needs the trend,
      // not the tail.
      if (built.value().routed.layout.num_wires() > 10000) break;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  const Args a = parse_args(argc, argv);
  if (a.list) return run_list();
  if (a.calibrate) return run_calibrate(a.families);

  FuzzOptions opt;
  opt.seed = a.seed;
  opt.budget_seconds = a.budget_seconds;
  opt.max_cases = a.max_cases;
  opt.families = a.families;
  opt.shrink = a.shrink;

  if (!a.line.empty()) {
    FuzzCase c;
    std::string err;
    if (!FuzzCase::parse(a.line, &c, &err)) arg_error("--line: " + err);
    const std::vector<std::string> violations =
        starlay::check::check_case(c, opt.oracle, opt.metamorphic);
    if (violations.empty()) {
      std::printf("starcheck: %s: all checks passed\n", c.line().c_str());
      return 0;
    }
    std::printf("FAIL %s\n", c.line().c_str());
    for (const std::string& v : violations) std::printf("  %s\n", v.c_str());
    return 1;
  }

  if (!a.replay_path.empty()) {
    std::ifstream in(a.replay_path);
    if (!in) {
      // I/O failure, not an argument-spelling problem: exit 4, the same
      // code starlay_cli and starlayd use for unreadable paths.
      std::fprintf(stderr, "starcheck: cannot open corpus file: %s\n", a.replay_path.c_str());
      return 4;
    }
    std::vector<std::string> lines;
    for (std::string line; std::getline(in, line);) lines.push_back(line);
    return report_and_exit_code(starlay::check::run_replay(lines, opt), "replay");
  }

  std::printf("starcheck: fuzzing %s, seed %llu, budget %.0fs%s\n",
              a.families.empty() ? "all families" : "family subset",
              static_cast<unsigned long long>(a.seed), a.budget_seconds,
              a.max_cases >= 0 ? (", max " + std::to_string(a.max_cases) + " cases").c_str()
                               : "");
  return report_and_exit_code(starlay::check::run_fuzz(opt), "fuzz");
}
