/// \file starlay_load.cpp
/// \brief Load generator and saturation bench for starlayd.
///
///   starlay_load --daemon ./starlayd                # spawn + drive + stop
///   starlay_load --socket /tmp/starlay.sock         # drive a running daemon
///   starlay_load --port 4815 --clients 8 --requests 4000
///
/// The workload models a design-exploration session: one hot request
/// (star n=7 by default, ~95% of traffic) plus a small rotating cold set,
/// issued by --clients concurrent connections.  Every response carries the
/// service's cache verdict ("hit" / "miss" / "join"), so latencies are
/// classified at the source rather than guessed from timing.  Reported:
///
///   rps, p50/p99 over all requests, hit rate, p99 over cache hits, and
///   the cold build latency of the hot request (first miss on a fresh
///   daemon) -- written as a one-row JSON array to --out (BENCH_serve.json)
///   in the same flat-object format as the other BENCH_*.json files.
///
/// Exit codes: 0 success, 2 bad arguments, 3 protocol/internal error,
/// 4 I/O error (spawn, connect, or --out write failure).

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "starlay/serve/json.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using starlay::serve::Json;

struct Args {
  std::string daemon_path;  ///< spawn this starlayd on a temp unix socket
  std::string socket_path;  ///< or connect to an existing unix socket
  int port = -1;            ///< or connect to an existing TCP daemon
  int clients = 4;
  int requests = 2000;
  std::string family = "star";
  int n = 7;
  std::string passes = "compact,refine";  ///< hot request passes ("" = none)
  std::string out = "BENCH_serve.json";
};

[[noreturn]] void usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: starlay_load (--daemon STARLAYD | --socket PATH | --port INT)\n"
               "                    [--clients INT] [--requests INT]\n"
               "                    [--family NAME] [--n INT] [--out PATH]\n"
               "  --daemon PATH    spawn PATH on a private unix socket, drive it,\n"
               "                   send shutdown, and reap it\n"
               "  --socket PATH    drive an already-running unix-socket daemon\n"
               "  --port INT       drive an already-running TCP daemon (127.0.0.1)\n"
               "  --clients INT    concurrent connections (default 4)\n"
               "  --requests INT   total requests across all clients (default 2000)\n"
               "  --family NAME    hot request family (default star)\n"
               "  --n INT          hot request size (default 7)\n"
               "  --passes LIST    hot request pass list (default compact,refine;\n"
               "                   pass '' for a bare build)\n"
               "  --out PATH       bench report path (default BENCH_serve.json)\n"
               "exit codes: 0 success, 2 bad arguments, 3 protocol error, 4 I/O error\n");
  std::exit(code);
}

[[noreturn]] void arg_error(const std::string& message) {
  std::fprintf(stderr, "starlay_load: %s\n", message.c_str());
  std::exit(2);
}

[[noreturn]] void io_error(const std::string& message) {
  std::fprintf(stderr, "starlay_load: %s (errno %d: %s)\n", message.c_str(), errno,
               std::strerror(errno));
  std::exit(4);
}

int parse_int(const std::string& flag, const char* v, int lo, int hi) {
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  if (end == v || *end != '\0' || parsed < lo || parsed > hi)
    arg_error("bad value '" + std::string(v) + "' for " + flag);
  return static_cast<int>(parsed);
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) arg_error("missing value after '" + std::string(flag) + "'");
      return argv[++i];
    };
    if (arg == "--help") usage(0);
    if (arg == "--daemon") a.daemon_path = value("--daemon");
    else if (arg == "--socket") a.socket_path = value("--socket");
    else if (arg == "--port") a.port = parse_int("--port", value("--port"), 0, 65535);
    else if (arg == "--clients") a.clients = parse_int("--clients", value("--clients"), 1, 256);
    else if (arg == "--requests")
      a.requests = parse_int("--requests", value("--requests"), 1, 10'000'000);
    else if (arg == "--family") a.family = value("--family");
    else if (arg == "--n") a.n = parse_int("--n", value("--n"), 1, 64);
    else if (arg == "--passes") a.passes = value("--passes");
    else if (arg == "--out") a.out = value("--out");
    else arg_error("unknown argument '" + arg + "' (see --help)");
  }
  const int endpoints = (!a.daemon_path.empty() ? 1 : 0) + (!a.socket_path.empty() ? 1 : 0) +
                        (a.port >= 0 ? 1 : 0);
  if (endpoints != 1) arg_error("need exactly one of --daemon, --socket, --port");
  return a;
}

/// One blocking line-protocol connection.
class Connection {
 public:
  Connection(const std::string& unix_path, int port) {
    if (!unix_path.empty()) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) io_error("socket()");
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", unix_path.c_str());
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd_);
        fd_ = -1;
      }
    } else {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) io_error("socket()");
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(port));
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd_);
        fd_ = -1;
      }
    }
  }
  ~Connection() {
    if (fd_ >= 0) ::close(fd_);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  bool ok() const { return fd_ >= 0; }

  /// Sends one request line and blocks for the response line.
  /// Empty result = connection failure.
  std::string round_trip(const std::string& line) {
    std::string out = line;
    out.push_back('\n');
    std::size_t sent = 0;
    while (sent < out.size()) {
      const ssize_t k = ::send(fd_, out.data() + sent, out.size() - sent, MSG_NOSIGNAL);
      if (k < 0) {
        if (errno == EINTR) continue;
        return "";
      }
      sent += static_cast<std::size_t>(k);
    }
    for (;;) {
      if (const std::size_t nl = buf_.find('\n'); nl != std::string::npos) {
        std::string reply = buf_.substr(0, nl);
        buf_.erase(0, nl + 1);
        return reply;
      }
      char chunk[4096];
      const ssize_t k = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (k < 0 && errno == EINTR) continue;
      if (k <= 0) return "";
      buf_.append(chunk, static_cast<std::size_t>(k));
    }
  }

 private:
  int fd_ = -1;
  std::string buf_;
};

std::string make_request(std::int64_t id, const std::string& family, int n,
                         const std::string& passes = "") {
  Json req = Json::object();
  req.set("id", Json(id));
  req.set("method", Json("measure"));
  req.set("family", Json(family));
  req.set("n", Json(n));
  if (!passes.empty()) req.set("passes", Json(passes));
  return req.dump();
}

bool response_ok(const std::string& reply) {
  const std::optional<Json> rsp = Json::parse(reply);
  if (!rsp || !rsp->is_object()) return false;
  const Json* ok = rsp->find("ok");
  return ok != nullptr && ok->is_bool() && ok->as_bool();
}

/// "hit" / "miss" / "join" from a layout-method response; "" when the
/// response is missing, not ok, or carries no cache verdict.
std::string cache_verdict(const std::string& reply) {
  if (!response_ok(reply)) return "";
  const std::optional<Json> rsp = Json::parse(reply);
  const Json* cache = rsp->find("cache");
  return (cache != nullptr && cache->is_string()) ? cache->as_string() : "";
}

struct Sample {
  double ms;
  char verdict;  ///< 'h' hit, 'm' miss, 'j' join
};

double percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted_ms.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_ms.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_ms[lo] * (1.0 - frac) + sorted_ms[hi] * frac;
}

}  // namespace

int main(int argc, char** argv) {
  Args a = parse_args(argc, argv);

  // Spawn mode: private socket path, fork/exec, retry-connect below.
  pid_t daemon_pid = -1;
  if (!a.daemon_path.empty()) {
    a.socket_path = "/tmp/starlay_load." + std::to_string(::getpid()) + ".sock";
    daemon_pid = ::fork();
    if (daemon_pid < 0) io_error("fork()");
    if (daemon_pid == 0) {
      ::execl(a.daemon_path.c_str(), "starlayd", "--socket", a.socket_path.c_str(),
              static_cast<char*>(nullptr));
      std::fprintf(stderr, "starlay_load: exec '%s' failed (errno %d: %s)\n",
                   a.daemon_path.c_str(), errno, std::strerror(errno));
      ::_exit(127);
    }
  }

  // Connect (retrying while a spawned daemon binds its socket).
  auto connect_once = [&] { return std::make_unique<Connection>(a.socket_path, a.port); };
  std::unique_ptr<Connection> probe;
  for (int attempt = 0; attempt < 100; ++attempt) {
    probe = connect_once();
    if (probe->ok()) break;
    if (daemon_pid < 0) break;  // existing daemon: no point retrying
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!probe->ok()) io_error("cannot connect to daemon");
  if (!response_ok(probe->round_trip(R"({"id": 0, "method": "ping"})"))) {
    std::fprintf(stderr, "starlay_load: daemon did not answer ping\n");
    return 3;
  }

  // Cold build of the hot request: the baseline the cache is measured
  // against.  On a fresh daemon this is a miss; on a warm one we take the
  // reported latency anyway and say so in the verdict counters.
  const std::string hot = make_request(1, a.family, a.n, a.passes);
  const Clock::time_point cold_t0 = Clock::now();
  const std::string cold_reply = probe->round_trip(hot);
  const double cold_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - cold_t0).count();
  const std::string cold_verdict = cache_verdict(cold_reply);
  if (cold_verdict.empty()) {
    std::fprintf(stderr, "starlay_load: hot request failed: %s\n", cold_reply.c_str());
    return 3;
  }

  // The cold set: small sizes that rotate through ~5% of traffic.  After
  // first touch they are cache hits too, which is the point -- the bench
  // measures a repeated-request mix, not a cache-busting adversary.
  std::vector<std::string> cold_set;
  for (int n = 4; n <= 6; ++n) cold_set.push_back(make_request(100 + n, "star", n));
  cold_set.push_back(make_request(200, "hcn", 3));
  cold_set.push_back(make_request(201, "hypercube", 6));

  const int per_client = (a.requests + a.clients - 1) / a.clients;
  std::vector<std::vector<Sample>> samples(static_cast<std::size_t>(a.clients));
  std::vector<std::thread> threads;
  std::mutex fail_mu;
  std::string failure;

  const Clock::time_point t0 = Clock::now();
  for (int c = 0; c < a.clients; ++c) {
    threads.emplace_back([&, c] {
      Connection conn(a.socket_path, a.port);
      if (!conn.ok()) {
        std::lock_guard<std::mutex> lock(fail_mu);
        failure = "client connect failed";
        return;
      }
      auto& out = samples[static_cast<std::size_t>(c)];
      out.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        // Every 20th request draws from the cold set -> 95% hot traffic.
        const bool is_cold = (i % 20) == 19;
        const std::string& req =
            is_cold ? cold_set[static_cast<std::size_t>((c + i / 20)) % cold_set.size()] : hot;
        const Clock::time_point s0 = Clock::now();
        const std::string reply = conn.round_trip(req);
        const double ms = std::chrono::duration<double, std::milli>(Clock::now() - s0).count();
        const std::string verdict = cache_verdict(reply);
        if (verdict.empty()) {
          std::lock_guard<std::mutex> lock(fail_mu);
          failure = "request failed: " + (reply.empty() ? "(connection closed)" : reply);
          return;
        }
        out.push_back(Sample{ms, verdict[0]});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(Clock::now() - t0).count();

  // Stop a spawned daemon before reporting, so a report always means the
  // daemon also shut down cleanly.
  if (daemon_pid >= 0) {
    probe->round_trip(R"({"id": 99, "method": "shutdown"})");
    int status = 0;
    ::waitpid(daemon_pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      std::fprintf(stderr, "starlay_load: daemon exited abnormally (status %d)\n", status);
      return 3;
    }
  }
  if (!failure.empty()) {
    std::fprintf(stderr, "starlay_load: %s\n", failure.c_str());
    return 3;
  }

  std::vector<double> all_ms, hit_ms;
  std::int64_t hits = 0, misses = 0, joins = 0;
  for (const auto& per : samples)
    for (const Sample& s : per) {
      all_ms.push_back(s.ms);
      if (s.verdict == 'h') {
        hit_ms.push_back(s.ms);
        ++hits;
      } else if (s.verdict == 'm') {
        ++misses;
      } else {
        ++joins;
      }
    }
  std::sort(all_ms.begin(), all_ms.end());
  std::sort(hit_ms.begin(), hit_ms.end());
  const std::int64_t total = static_cast<std::int64_t>(all_ms.size());
  const double hit_rate = total > 0 ? static_cast<double>(hits) / static_cast<double>(total) : 0;
  const double rps = wall_s > 0 ? static_cast<double>(total) / wall_s : 0;
  const double p50 = percentile(all_ms, 0.50);
  const double p99 = percentile(all_ms, 0.99);
  const double hit_p99 = percentile(hit_ms, 0.99);

  std::FILE* f = std::fopen(a.out.c_str(), "w");
  if (f == nullptr) io_error("cannot open '" + a.out + "' for writing");
  std::fprintf(f,
               "[\n"
               "  {\"family\": \"%s\", \"n\": %d, \"passes\": \"%s\", \"clients\": %d, "
               "\"requests\": %lld,\n"
               "   \"wall_s\": %.3f, \"rps\": %.1f, \"p50_ms\": %.4f, \"p99_ms\": %.4f,\n"
               "   \"hit_rate\": %.4f, \"hit_p99_ms\": %.4f, \"cold_ms\": %.3f,\n"
               "   \"cold_verdict\": \"%s\", \"hits\": %lld, \"misses\": %lld, \"joins\": %lld}\n"
               "]\n",
               a.family.c_str(), a.n, a.passes.c_str(), a.clients,
               static_cast<long long>(total), wall_s, rps,
               p50, p99, hit_rate, hit_p99, cold_ms, cold_verdict.c_str(),
               static_cast<long long>(hits), static_cast<long long>(misses),
               static_cast<long long>(joins));
  std::fclose(f);

  std::printf("starlay_load: %lld requests, %d clients, %.2fs wall\n",
              static_cast<long long>(total), a.clients, wall_s);
  std::printf("  rps        %.1f\n", rps);
  std::printf("  p50 / p99  %.4f / %.4f ms\n", p50, p99);
  std::printf("  hit rate   %.2f%%  (hits %lld, misses %lld, joins %lld)\n", 100.0 * hit_rate,
              static_cast<long long>(hits), static_cast<long long>(misses),
              static_cast<long long>(joins));
  std::printf("  hit p99    %.4f ms   cold build %.3f ms (%s)\n", hit_p99, cold_ms,
              cold_verdict.c_str());
  std::printf("  report     %s\n", a.out.c_str());
  return 0;
}
