# Empty dependencies file for bench_te_throughput.
# This may be replaced when dependencies are built.
