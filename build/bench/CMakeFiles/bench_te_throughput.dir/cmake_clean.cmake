file(REMOVE_RECURSE
  "CMakeFiles/bench_te_throughput.dir/bench_te_throughput.cpp.o"
  "CMakeFiles/bench_te_throughput.dir/bench_te_throughput.cpp.o.d"
  "bench_te_throughput"
  "bench_te_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_te_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
