# Empty compiler generated dependencies file for bench_extended_grid.
# This may be replaced when dependencies are built.
