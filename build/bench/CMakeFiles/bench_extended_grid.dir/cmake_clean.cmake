file(REMOVE_RECURSE
  "CMakeFiles/bench_extended_grid.dir/bench_extended_grid.cpp.o"
  "CMakeFiles/bench_extended_grid.dir/bench_extended_grid.cpp.o.d"
  "bench_extended_grid"
  "bench_extended_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extended_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
