file(REMOVE_RECURSE
  "CMakeFiles/bench_bisection_hcn.dir/bench_bisection_hcn.cpp.o"
  "CMakeFiles/bench_bisection_hcn.dir/bench_bisection_hcn.cpp.o.d"
  "bench_bisection_hcn"
  "bench_bisection_hcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisection_hcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
