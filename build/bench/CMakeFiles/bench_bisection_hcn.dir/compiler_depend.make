# Empty compiler generated dependencies file for bench_bisection_hcn.
# This may be replaced when dependencies are built.
