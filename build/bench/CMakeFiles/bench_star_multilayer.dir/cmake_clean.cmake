file(REMOVE_RECURSE
  "CMakeFiles/bench_star_multilayer.dir/bench_star_multilayer.cpp.o"
  "CMakeFiles/bench_star_multilayer.dir/bench_star_multilayer.cpp.o.d"
  "bench_star_multilayer"
  "bench_star_multilayer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_multilayer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
