# Empty dependencies file for bench_star_multilayer.
# This may be replaced when dependencies are built.
