file(REMOVE_RECURSE
  "CMakeFiles/bench_star_area.dir/bench_star_area.cpp.o"
  "CMakeFiles/bench_star_area.dir/bench_star_area.cpp.o.d"
  "bench_star_area"
  "bench_star_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
