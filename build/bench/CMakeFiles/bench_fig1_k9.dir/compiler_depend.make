# Empty compiler generated dependencies file for bench_fig1_k9.
# This may be replaced when dependencies are built.
