file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_k9.dir/bench_fig1_k9.cpp.o"
  "CMakeFiles/bench_fig1_k9.dir/bench_fig1_k9.cpp.o.d"
  "bench_fig1_k9"
  "bench_fig1_k9.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_k9.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
