file(REMOVE_RECURSE
  "CMakeFiles/bench_hcn_hfn_area.dir/bench_hcn_hfn_area.cpp.o"
  "CMakeFiles/bench_hcn_hfn_area.dir/bench_hcn_hfn_area.cpp.o.d"
  "bench_hcn_hfn_area"
  "bench_hcn_hfn_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hcn_hfn_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
