# Empty dependencies file for bench_hcn_hfn_area.
# This may be replaced when dependencies are built.
