file(REMOVE_RECURSE
  "CMakeFiles/bench_collinear_complete.dir/bench_collinear_complete.cpp.o"
  "CMakeFiles/bench_collinear_complete.dir/bench_collinear_complete.cpp.o.d"
  "bench_collinear_complete"
  "bench_collinear_complete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collinear_complete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
