# Empty dependencies file for bench_collinear_complete.
# This may be replaced when dependencies are built.
