file(REMOVE_RECURSE
  "CMakeFiles/bench_bisection_star.dir/bench_bisection_star.cpp.o"
  "CMakeFiles/bench_bisection_star.dir/bench_bisection_star.cpp.o.d"
  "bench_bisection_star"
  "bench_bisection_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bisection_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
