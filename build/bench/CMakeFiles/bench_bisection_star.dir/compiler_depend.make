# Empty compiler generated dependencies file for bench_bisection_star.
# This may be replaced when dependencies are built.
