# Empty compiler generated dependencies file for bench_star_vs_hypercube.
# This may be replaced when dependencies are built.
