file(REMOVE_RECURSE
  "CMakeFiles/bench_star_vs_hypercube.dir/bench_star_vs_hypercube.cpp.o"
  "CMakeFiles/bench_star_vs_hypercube.dir/bench_star_vs_hypercube.cpp.o.d"
  "bench_star_vs_hypercube"
  "bench_star_vs_hypercube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_star_vs_hypercube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
