# Empty compiler generated dependencies file for bench_complete2d.
# This may be replaced when dependencies are built.
