file(REMOVE_RECURSE
  "CMakeFiles/bench_complete2d.dir/bench_complete2d.cpp.o"
  "CMakeFiles/bench_complete2d.dir/bench_complete2d.cpp.o.d"
  "bench_complete2d"
  "bench_complete2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_complete2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
