
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/render/ascii.cpp" "src/render/CMakeFiles/starlay_render.dir/ascii.cpp.o" "gcc" "src/render/CMakeFiles/starlay_render.dir/ascii.cpp.o.d"
  "/root/repo/src/render/svg.cpp" "src/render/CMakeFiles/starlay_render.dir/svg.cpp.o" "gcc" "src/render/CMakeFiles/starlay_render.dir/svg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/starlay_support.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/starlay_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/starlay_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
