# Empty compiler generated dependencies file for starlay_render.
# This may be replaced when dependencies are built.
