file(REMOVE_RECURSE
  "libstarlay_render.a"
)
