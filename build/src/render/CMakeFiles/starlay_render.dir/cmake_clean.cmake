file(REMOVE_RECURSE
  "CMakeFiles/starlay_render.dir/ascii.cpp.o"
  "CMakeFiles/starlay_render.dir/ascii.cpp.o.d"
  "CMakeFiles/starlay_render.dir/svg.cpp.o"
  "CMakeFiles/starlay_render.dir/svg.cpp.o.d"
  "libstarlay_render.a"
  "libstarlay_render.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlay_render.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
