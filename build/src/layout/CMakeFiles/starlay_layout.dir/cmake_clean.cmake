file(REMOVE_RECURSE
  "CMakeFiles/starlay_layout.dir/channel.cpp.o"
  "CMakeFiles/starlay_layout.dir/channel.cpp.o.d"
  "CMakeFiles/starlay_layout.dir/layout.cpp.o"
  "CMakeFiles/starlay_layout.dir/layout.cpp.o.d"
  "CMakeFiles/starlay_layout.dir/placement.cpp.o"
  "CMakeFiles/starlay_layout.dir/placement.cpp.o.d"
  "CMakeFiles/starlay_layout.dir/router.cpp.o"
  "CMakeFiles/starlay_layout.dir/router.cpp.o.d"
  "CMakeFiles/starlay_layout.dir/validate.cpp.o"
  "CMakeFiles/starlay_layout.dir/validate.cpp.o.d"
  "libstarlay_layout.a"
  "libstarlay_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlay_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
