file(REMOVE_RECURSE
  "libstarlay_layout.a"
)
