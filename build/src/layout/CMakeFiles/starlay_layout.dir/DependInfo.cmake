
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/layout/channel.cpp" "src/layout/CMakeFiles/starlay_layout.dir/channel.cpp.o" "gcc" "src/layout/CMakeFiles/starlay_layout.dir/channel.cpp.o.d"
  "/root/repo/src/layout/layout.cpp" "src/layout/CMakeFiles/starlay_layout.dir/layout.cpp.o" "gcc" "src/layout/CMakeFiles/starlay_layout.dir/layout.cpp.o.d"
  "/root/repo/src/layout/placement.cpp" "src/layout/CMakeFiles/starlay_layout.dir/placement.cpp.o" "gcc" "src/layout/CMakeFiles/starlay_layout.dir/placement.cpp.o.d"
  "/root/repo/src/layout/router.cpp" "src/layout/CMakeFiles/starlay_layout.dir/router.cpp.o" "gcc" "src/layout/CMakeFiles/starlay_layout.dir/router.cpp.o.d"
  "/root/repo/src/layout/validate.cpp" "src/layout/CMakeFiles/starlay_layout.dir/validate.cpp.o" "gcc" "src/layout/CMakeFiles/starlay_layout.dir/validate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/starlay_support.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/starlay_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
