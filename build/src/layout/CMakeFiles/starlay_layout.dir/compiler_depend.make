# Empty compiler generated dependencies file for starlay_layout.
# This may be replaced when dependencies are built.
