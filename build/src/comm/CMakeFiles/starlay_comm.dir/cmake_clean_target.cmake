file(REMOVE_RECURSE
  "libstarlay_comm.a"
)
