# Empty dependencies file for starlay_comm.
# This may be replaced when dependencies are built.
