
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/comm/edge_coloring.cpp" "src/comm/CMakeFiles/starlay_comm.dir/edge_coloring.cpp.o" "gcc" "src/comm/CMakeFiles/starlay_comm.dir/edge_coloring.cpp.o.d"
  "/root/repo/src/comm/network.cpp" "src/comm/CMakeFiles/starlay_comm.dir/network.cpp.o" "gcc" "src/comm/CMakeFiles/starlay_comm.dir/network.cpp.o.d"
  "/root/repo/src/comm/te.cpp" "src/comm/CMakeFiles/starlay_comm.dir/te.cpp.o" "gcc" "src/comm/CMakeFiles/starlay_comm.dir/te.cpp.o.d"
  "/root/repo/src/comm/unicast.cpp" "src/comm/CMakeFiles/starlay_comm.dir/unicast.cpp.o" "gcc" "src/comm/CMakeFiles/starlay_comm.dir/unicast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/starlay_support.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/starlay_topology.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
