file(REMOVE_RECURSE
  "CMakeFiles/starlay_comm.dir/edge_coloring.cpp.o"
  "CMakeFiles/starlay_comm.dir/edge_coloring.cpp.o.d"
  "CMakeFiles/starlay_comm.dir/network.cpp.o"
  "CMakeFiles/starlay_comm.dir/network.cpp.o.d"
  "CMakeFiles/starlay_comm.dir/te.cpp.o"
  "CMakeFiles/starlay_comm.dir/te.cpp.o.d"
  "CMakeFiles/starlay_comm.dir/unicast.cpp.o"
  "CMakeFiles/starlay_comm.dir/unicast.cpp.o.d"
  "libstarlay_comm.a"
  "libstarlay_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlay_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
