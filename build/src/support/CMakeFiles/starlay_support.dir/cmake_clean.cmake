file(REMOVE_RECURSE
  "CMakeFiles/starlay_support.dir/math.cpp.o"
  "CMakeFiles/starlay_support.dir/math.cpp.o.d"
  "libstarlay_support.a"
  "libstarlay_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlay_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
