# Empty dependencies file for starlay_support.
# This may be replaced when dependencies are built.
