file(REMOVE_RECURSE
  "libstarlay_support.a"
)
