file(REMOVE_RECURSE
  "CMakeFiles/starlay_topology.dir/bubble_sort_graph.cpp.o"
  "CMakeFiles/starlay_topology.dir/bubble_sort_graph.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/complete_graph.cpp.o"
  "CMakeFiles/starlay_topology.dir/complete_graph.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/graph.cpp.o"
  "CMakeFiles/starlay_topology.dir/graph.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/hcn.cpp.o"
  "CMakeFiles/starlay_topology.dir/hcn.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/hypercube.cpp.o"
  "CMakeFiles/starlay_topology.dir/hypercube.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/pancake_graph.cpp.o"
  "CMakeFiles/starlay_topology.dir/pancake_graph.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/permutation.cpp.o"
  "CMakeFiles/starlay_topology.dir/permutation.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/properties.cpp.o"
  "CMakeFiles/starlay_topology.dir/properties.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/star_graph.cpp.o"
  "CMakeFiles/starlay_topology.dir/star_graph.cpp.o.d"
  "CMakeFiles/starlay_topology.dir/transposition_graph.cpp.o"
  "CMakeFiles/starlay_topology.dir/transposition_graph.cpp.o.d"
  "libstarlay_topology.a"
  "libstarlay_topology.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlay_topology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
