file(REMOVE_RECURSE
  "libstarlay_topology.a"
)
