# Empty dependencies file for starlay_topology.
# This may be replaced when dependencies are built.
