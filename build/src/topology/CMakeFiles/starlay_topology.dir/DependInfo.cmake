
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topology/bubble_sort_graph.cpp" "src/topology/CMakeFiles/starlay_topology.dir/bubble_sort_graph.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/bubble_sort_graph.cpp.o.d"
  "/root/repo/src/topology/complete_graph.cpp" "src/topology/CMakeFiles/starlay_topology.dir/complete_graph.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/complete_graph.cpp.o.d"
  "/root/repo/src/topology/graph.cpp" "src/topology/CMakeFiles/starlay_topology.dir/graph.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/graph.cpp.o.d"
  "/root/repo/src/topology/hcn.cpp" "src/topology/CMakeFiles/starlay_topology.dir/hcn.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/hcn.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/topology/CMakeFiles/starlay_topology.dir/hypercube.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/hypercube.cpp.o.d"
  "/root/repo/src/topology/pancake_graph.cpp" "src/topology/CMakeFiles/starlay_topology.dir/pancake_graph.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/pancake_graph.cpp.o.d"
  "/root/repo/src/topology/permutation.cpp" "src/topology/CMakeFiles/starlay_topology.dir/permutation.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/permutation.cpp.o.d"
  "/root/repo/src/topology/properties.cpp" "src/topology/CMakeFiles/starlay_topology.dir/properties.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/properties.cpp.o.d"
  "/root/repo/src/topology/star_graph.cpp" "src/topology/CMakeFiles/starlay_topology.dir/star_graph.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/star_graph.cpp.o.d"
  "/root/repo/src/topology/transposition_graph.cpp" "src/topology/CMakeFiles/starlay_topology.dir/transposition_graph.cpp.o" "gcc" "src/topology/CMakeFiles/starlay_topology.dir/transposition_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/starlay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
