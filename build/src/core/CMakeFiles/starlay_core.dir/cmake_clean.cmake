file(REMOVE_RECURSE
  "CMakeFiles/starlay_core.dir/baseline.cpp.o"
  "CMakeFiles/starlay_core.dir/baseline.cpp.o.d"
  "CMakeFiles/starlay_core.dir/collinear_complete.cpp.o"
  "CMakeFiles/starlay_core.dir/collinear_complete.cpp.o.d"
  "CMakeFiles/starlay_core.dir/complete2d.cpp.o"
  "CMakeFiles/starlay_core.dir/complete2d.cpp.o.d"
  "CMakeFiles/starlay_core.dir/hcn_layout.cpp.o"
  "CMakeFiles/starlay_core.dir/hcn_layout.cpp.o.d"
  "CMakeFiles/starlay_core.dir/hypercube_layout.cpp.o"
  "CMakeFiles/starlay_core.dir/hypercube_layout.cpp.o.d"
  "CMakeFiles/starlay_core.dir/lower_bounds.cpp.o"
  "CMakeFiles/starlay_core.dir/lower_bounds.cpp.o.d"
  "CMakeFiles/starlay_core.dir/multilayer_star.cpp.o"
  "CMakeFiles/starlay_core.dir/multilayer_star.cpp.o.d"
  "CMakeFiles/starlay_core.dir/star_layout.cpp.o"
  "CMakeFiles/starlay_core.dir/star_layout.cpp.o.d"
  "CMakeFiles/starlay_core.dir/star_model.cpp.o"
  "CMakeFiles/starlay_core.dir/star_model.cpp.o.d"
  "libstarlay_core.a"
  "libstarlay_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlay_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
