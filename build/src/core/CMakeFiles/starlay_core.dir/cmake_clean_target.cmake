file(REMOVE_RECURSE
  "libstarlay_core.a"
)
