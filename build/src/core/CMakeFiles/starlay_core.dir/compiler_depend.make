# Empty compiler generated dependencies file for starlay_core.
# This may be replaced when dependencies are built.
