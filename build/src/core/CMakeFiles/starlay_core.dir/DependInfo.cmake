
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline.cpp" "src/core/CMakeFiles/starlay_core.dir/baseline.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/baseline.cpp.o.d"
  "/root/repo/src/core/collinear_complete.cpp" "src/core/CMakeFiles/starlay_core.dir/collinear_complete.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/collinear_complete.cpp.o.d"
  "/root/repo/src/core/complete2d.cpp" "src/core/CMakeFiles/starlay_core.dir/complete2d.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/complete2d.cpp.o.d"
  "/root/repo/src/core/hcn_layout.cpp" "src/core/CMakeFiles/starlay_core.dir/hcn_layout.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/hcn_layout.cpp.o.d"
  "/root/repo/src/core/hypercube_layout.cpp" "src/core/CMakeFiles/starlay_core.dir/hypercube_layout.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/hypercube_layout.cpp.o.d"
  "/root/repo/src/core/lower_bounds.cpp" "src/core/CMakeFiles/starlay_core.dir/lower_bounds.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/lower_bounds.cpp.o.d"
  "/root/repo/src/core/multilayer_star.cpp" "src/core/CMakeFiles/starlay_core.dir/multilayer_star.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/multilayer_star.cpp.o.d"
  "/root/repo/src/core/star_layout.cpp" "src/core/CMakeFiles/starlay_core.dir/star_layout.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/star_layout.cpp.o.d"
  "/root/repo/src/core/star_model.cpp" "src/core/CMakeFiles/starlay_core.dir/star_model.cpp.o" "gcc" "src/core/CMakeFiles/starlay_core.dir/star_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/starlay_support.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/starlay_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/starlay_layout.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
