# Empty dependencies file for starlay_bisect.
# This may be replaced when dependencies are built.
