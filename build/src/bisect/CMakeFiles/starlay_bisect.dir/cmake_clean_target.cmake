file(REMOVE_RECURSE
  "libstarlay_bisect.a"
)
