# Empty compiler generated dependencies file for starlay_bisect.
# This may be replaced when dependencies are built.
