file(REMOVE_RECURSE
  "CMakeFiles/starlay_bisect.dir/constructions.cpp.o"
  "CMakeFiles/starlay_bisect.dir/constructions.cpp.o.d"
  "CMakeFiles/starlay_bisect.dir/exact.cpp.o"
  "CMakeFiles/starlay_bisect.dir/exact.cpp.o.d"
  "CMakeFiles/starlay_bisect.dir/kl.cpp.o"
  "CMakeFiles/starlay_bisect.dir/kl.cpp.o.d"
  "libstarlay_bisect.a"
  "libstarlay_bisect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/starlay_bisect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
