# Empty dependencies file for star_layout_test.
# This may be replaced when dependencies are built.
