file(REMOVE_RECURSE
  "CMakeFiles/star_layout_test.dir/star_layout_test.cpp.o"
  "CMakeFiles/star_layout_test.dir/star_layout_test.cpp.o.d"
  "star_layout_test"
  "star_layout_test.pdb"
  "star_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/star_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
