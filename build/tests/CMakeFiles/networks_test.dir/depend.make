# Empty dependencies file for networks_test.
# This may be replaced when dependencies are built.
