file(REMOVE_RECURSE
  "CMakeFiles/networks_test.dir/networks_test.cpp.o"
  "CMakeFiles/networks_test.dir/networks_test.cpp.o.d"
  "networks_test"
  "networks_test.pdb"
  "networks_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/networks_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
