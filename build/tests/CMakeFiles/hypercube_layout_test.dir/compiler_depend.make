# Empty compiler generated dependencies file for hypercube_layout_test.
# This may be replaced when dependencies are built.
