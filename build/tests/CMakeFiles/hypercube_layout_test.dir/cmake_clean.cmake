file(REMOVE_RECURSE
  "CMakeFiles/hypercube_layout_test.dir/hypercube_layout_test.cpp.o"
  "CMakeFiles/hypercube_layout_test.dir/hypercube_layout_test.cpp.o.d"
  "hypercube_layout_test"
  "hypercube_layout_test.pdb"
  "hypercube_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hypercube_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
