# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for hypercube_layout_test.
