# Empty compiler generated dependencies file for multilayer_test.
# This may be replaced when dependencies are built.
