file(REMOVE_RECURSE
  "CMakeFiles/multilayer_test.dir/multilayer_test.cpp.o"
  "CMakeFiles/multilayer_test.dir/multilayer_test.cpp.o.d"
  "multilayer_test"
  "multilayer_test.pdb"
  "multilayer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilayer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
