# Empty compiler generated dependencies file for te_test.
# This may be replaced when dependencies are built.
