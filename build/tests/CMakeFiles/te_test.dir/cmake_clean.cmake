file(REMOVE_RECURSE
  "CMakeFiles/te_test.dir/te_test.cpp.o"
  "CMakeFiles/te_test.dir/te_test.cpp.o.d"
  "te_test"
  "te_test.pdb"
  "te_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/te_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
