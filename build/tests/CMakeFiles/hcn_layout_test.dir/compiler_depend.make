# Empty compiler generated dependencies file for hcn_layout_test.
# This may be replaced when dependencies are built.
