file(REMOVE_RECURSE
  "CMakeFiles/hcn_layout_test.dir/hcn_layout_test.cpp.o"
  "CMakeFiles/hcn_layout_test.dir/hcn_layout_test.cpp.o.d"
  "hcn_layout_test"
  "hcn_layout_test.pdb"
  "hcn_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hcn_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
