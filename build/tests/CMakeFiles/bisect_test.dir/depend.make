# Empty dependencies file for bisect_test.
# This may be replaced when dependencies are built.
