file(REMOVE_RECURSE
  "CMakeFiles/bisect_test.dir/bisect_test.cpp.o"
  "CMakeFiles/bisect_test.dir/bisect_test.cpp.o.d"
  "bisect_test"
  "bisect_test.pdb"
  "bisect_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
