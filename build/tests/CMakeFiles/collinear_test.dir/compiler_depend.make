# Empty compiler generated dependencies file for collinear_test.
# This may be replaced when dependencies are built.
