file(REMOVE_RECURSE
  "CMakeFiles/collinear_test.dir/collinear_test.cpp.o"
  "CMakeFiles/collinear_test.dir/collinear_test.cpp.o.d"
  "collinear_test"
  "collinear_test.pdb"
  "collinear_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collinear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
