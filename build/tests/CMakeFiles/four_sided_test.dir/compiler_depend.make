# Empty compiler generated dependencies file for four_sided_test.
# This may be replaced when dependencies are built.
