file(REMOVE_RECURSE
  "CMakeFiles/four_sided_test.dir/four_sided_test.cpp.o"
  "CMakeFiles/four_sided_test.dir/four_sided_test.cpp.o.d"
  "four_sided_test"
  "four_sided_test.pdb"
  "four_sided_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/four_sided_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
