file(REMOVE_RECURSE
  "CMakeFiles/lower_bounds_test.dir/lower_bounds_test.cpp.o"
  "CMakeFiles/lower_bounds_test.dir/lower_bounds_test.cpp.o.d"
  "lower_bounds_test"
  "lower_bounds_test.pdb"
  "lower_bounds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lower_bounds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
