# Empty dependencies file for lower_bounds_test.
# This may be replaced when dependencies are built.
