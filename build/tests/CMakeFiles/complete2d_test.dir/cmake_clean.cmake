file(REMOVE_RECURSE
  "CMakeFiles/complete2d_test.dir/complete2d_test.cpp.o"
  "CMakeFiles/complete2d_test.dir/complete2d_test.cpp.o.d"
  "complete2d_test"
  "complete2d_test.pdb"
  "complete2d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complete2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
