# Empty compiler generated dependencies file for complete2d_test.
# This may be replaced when dependencies are built.
