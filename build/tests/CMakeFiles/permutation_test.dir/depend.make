# Empty dependencies file for permutation_test.
# This may be replaced when dependencies are built.
