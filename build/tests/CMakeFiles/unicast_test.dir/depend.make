# Empty dependencies file for unicast_test.
# This may be replaced when dependencies are built.
