file(REMOVE_RECURSE
  "CMakeFiles/unicast_test.dir/unicast_test.cpp.o"
  "CMakeFiles/unicast_test.dir/unicast_test.cpp.o.d"
  "unicast_test"
  "unicast_test.pdb"
  "unicast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
