# Empty dependencies file for edge_coloring_test.
# This may be replaced when dependencies are built.
