file(REMOVE_RECURSE
  "CMakeFiles/edge_coloring_test.dir/edge_coloring_test.cpp.o"
  "CMakeFiles/edge_coloring_test.dir/edge_coloring_test.cpp.o.d"
  "edge_coloring_test"
  "edge_coloring_test.pdb"
  "edge_coloring_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_coloring_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
