
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/edge_coloring_test.cpp" "tests/CMakeFiles/edge_coloring_test.dir/edge_coloring_test.cpp.o" "gcc" "tests/CMakeFiles/edge_coloring_test.dir/edge_coloring_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/starlay_core.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/starlay_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/bisect/CMakeFiles/starlay_bisect.dir/DependInfo.cmake"
  "/root/repo/build/src/render/CMakeFiles/starlay_render.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/starlay_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/topology/CMakeFiles/starlay_topology.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/starlay_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
