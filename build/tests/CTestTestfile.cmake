# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/permutation_test[1]_include.cmake")
include("/root/repo/build/tests/networks_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/channel_test[1]_include.cmake")
include("/root/repo/build/tests/placement_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/validate_test[1]_include.cmake")
include("/root/repo/build/tests/collinear_test[1]_include.cmake")
include("/root/repo/build/tests/complete2d_test[1]_include.cmake")
include("/root/repo/build/tests/star_layout_test[1]_include.cmake")
include("/root/repo/build/tests/hypercube_layout_test[1]_include.cmake")
include("/root/repo/build/tests/hcn_layout_test[1]_include.cmake")
include("/root/repo/build/tests/multilayer_test[1]_include.cmake")
include("/root/repo/build/tests/lower_bounds_test[1]_include.cmake")
include("/root/repo/build/tests/edge_coloring_test[1]_include.cmake")
include("/root/repo/build/tests/te_test[1]_include.cmake")
include("/root/repo/build/tests/bisect_test[1]_include.cmake")
include("/root/repo/build/tests/render_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/four_sided_test[1]_include.cmake")
include("/root/repo/build/tests/unicast_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
