# Empty compiler generated dependencies file for structure_gallery.
# This may be replaced when dependencies are built.
