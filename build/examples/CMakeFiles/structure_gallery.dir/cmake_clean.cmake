file(REMOVE_RECURSE
  "CMakeFiles/structure_gallery.dir/structure_gallery.cpp.o"
  "CMakeFiles/structure_gallery.dir/structure_gallery.cpp.o.d"
  "structure_gallery"
  "structure_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/structure_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
