# Empty compiler generated dependencies file for k9_figure.
# This may be replaced when dependencies are built.
