file(REMOVE_RECURSE
  "CMakeFiles/k9_figure.dir/k9_figure.cpp.o"
  "CMakeFiles/k9_figure.dir/k9_figure.cpp.o.d"
  "k9_figure"
  "k9_figure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/k9_figure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
